module Partition = Jim_partition.Partition

(* The round-scoped scoring engine every strategy routes through.

   A lookahead strategy scores each informative class c by re-classifying
   every informative class i under the two hypothetical states "c labelled
   +" and "c labelled -" — O(k^2) classifications per question, each one a
   lattice meet.  Three observations make this cheap:

   - [meet s sig_i] only depends on the round's state, not on the
     candidate: compute it once per round and share it across candidates
     (every negative-branch classification, and the certain-negative test
     of the positive branch of candidates whose meet leaves [s]
     unchanged, reuses it);
   - hypothetical states repeat — across candidates (distinct signatures
     with equal clipped meets), across the two count/cardinality passes,
     and across rounds (the answered branch becomes the next round's base
     state) — so classifications are memoised in a [cache] keyed by
     [State.key] x class index that outlives the round;
   - candidate scoring is effect-free, so it can fan out across domains
     ([JIM_DOMAINS] / [--domains]); the merge is a deterministic
     lowest-index-wins argmax, making parallel and sequential picks
     bit-identical. *)

(* The cross-round memo.  Since the instance catalog (lib/catalog) one
   cache can be shared by every session on the same instance, so rows are
   interned in a striped structure:

   - a [row] (one status slot per class, keyed by [State.key]) and a
     [meet] row (one meet slot per class, keyed by the canonical
     predicate [s]) hold values that are pure functions of their key, so
     slot reads and writes need no synchronisation — a racing reader
     either sees [None] (recomputes the identical value) or the value;
   - interning the row itself is the only write that touches shared
     bookkeeping, so it takes a per-stripe mutex.  Lookups try a dirty
     [Hashtbl.find_opt] first; a miss falls into the locked find-or-add,
     which re-checks — a reader racing a rehash can only miss, never
     see a wrong row.

   All shared-cache traffic comes from sys-threads of one domain (the
   scoring domains spawned by [best] use private clones), so the dirty
   read is over memory the runtime lock already keeps coherent. *)

type 'v stripe = { lock : Mutex.t; tbl : (string, 'v) Hashtbl.t }

type cache = {
  row_stripes : State.status option array stripe array;
  meet_stripes : Partition.t option array stripe array;
}

let stripes () =
  Array.init 16 (fun _ -> { lock = Mutex.create (); tbl = Hashtbl.create 16 })

let new_cache () : cache =
  { row_stripes = stripes (); meet_stripes = stripes () }

let find_or_add stripes key fresh =
  let s = stripes.(Hashtbl.hash key land (Array.length stripes - 1)) in
  match Hashtbl.find_opt s.tbl key with
  | Some v -> v
  | None ->
    Mutex.lock s.lock;
    let v =
      match Hashtbl.find_opt s.tbl key with
      | Some v -> v
      | None ->
        let v = fresh () in
        Hashtbl.add s.tbl key v;
        v
    in
    Mutex.unlock s.lock;
    v

type t = {
  st : State.t;
  classes : Sigclass.cls array;
  informative : int array;
  meets : Partition.t option array;  (** per class: [meet st.s sig_i] *)
  hyps : (State.t option * State.t option) option array;
      (** per candidate: the two hypothetical states *)
  cache : cache;
}

let informative_gen classes status =
  let k = Array.length classes in
  let keep = Array.make k false in
  let count = ref 0 in
  for i = 0 to k - 1 do
    if status i = State.Informative then begin
      keep.(i) <- true;
      incr count
    end
  done;
  let out = Array.make !count 0 in
  let j = ref 0 in
  for i = 0 to k - 1 do
    if keep.(i) then begin
      out.(!j) <- i;
      incr j
    end
  done;
  out

let informative_of st classes =
  informative_gen classes (fun i ->
      Metrics.record_classify ();
      State.classify st classes.(i).Sigclass.sg)

(* The per-round meet table only depends on the round's canonical
   predicate [s], so with a shared cache it is interned under
   [Partition.to_string s]: every session on the instance that reaches a
   state with the same [s] (most obviously round 0) reuses the same
   row. *)
let meets_row cache classes st =
  find_or_add cache.meet_stripes
    (Partition.to_string st.State.s)
    (fun () -> Array.make (Array.length classes) None)

let create ?cache st classes informative =
  match cache with
  | None ->
    let cache = new_cache () in
    {
      st;
      classes;
      informative;
      meets = Array.make (Array.length classes) None;
      hyps = Array.make (Array.length classes) None;
      cache;
    }
  | Some cache ->
    {
      st;
      classes;
      informative;
      meets = meets_row cache classes st;
      hyps = Array.make (Array.length classes) None;
      cache;
    }

let state sc = sc.st
let informative sc = sc.informative

let meet_s sc i =
  match sc.meets.(i) with
  | Some m -> m
  | None ->
    Metrics.record_meet ();
    let m = Partition.meet sc.st.State.s sc.classes.(i).Sigclass.sg in
    sc.meets.(i) <- Some m;
    m

let meet_rank sc i = Partition.rank (meet_s sc i)

let hypothetical sc c =
  match sc.hyps.(c) with
  | Some h -> h
  | None ->
    let sg = sc.classes.(c).Sigclass.sg in
    let branch label =
      (* State.add computes one meet internally. *)
      Metrics.record_meet ();
      match State.add sc.st label sg with
      | Ok st' -> Some st'
      | Error `Contradiction -> None
    in
    let h = (branch State.Pos, branch State.Neg) in
    sc.hyps.(c) <- Some h;
    h

(* The memo row of a (hypothetical) state: one status slot per class. *)
let row_of cache classes st' =
  find_or_add cache.row_stripes (State.key st') (fun () ->
      Array.make (Array.length classes) None)

(* [State.classify st' sig_i], but reusing the shared per-round meets when
   [st'] kept the round's canonical predicate (every negative branch
   does). *)
let classify_uncached sc st' i =
  Metrics.record_classify ();
  let sg = sc.classes.(i).Sigclass.sg in
  if Partition.refines st'.State.s sg then State.Certain_pos
  else
    let m =
      if st'.State.s == sc.st.State.s then meet_s sc i
      else begin
        Metrics.record_meet ();
        Partition.meet st'.State.s sg
      end
    in
    if List.exists (fun u -> Partition.refines m u) st'.State.negatives then
      State.Certain_neg
    else State.Informative

let classify_row sc st' (row : State.status option array) i =
  match row.(i) with
  | Some v ->
    Metrics.record_hit ();
    v
  | None ->
    Metrics.record_miss ();
    let v = classify_uncached sc st' i in
    row.(i) <- Some v;
    v

let class_status cache classes st i =
  let row = row_of cache classes st in
  match row.(i) with
  | Some v ->
    Metrics.record_hit ();
    v
  | None ->
    Metrics.record_miss ();
    Metrics.record_classify ();
    let v = State.classify st classes.(i).Sigclass.sg in
    row.(i) <- Some v;
    v

(* When a shared cache is supplied the informative set is computed
   through it, so inner lookahead sweeps reuse the classifications the
   outer round already paid for. *)
let of_state ?cache st classes =
  match cache with
  | None -> create st classes (informative_of st classes)
  | Some cache ->
    create ~cache st classes
      (informative_gen classes (fun i -> class_status cache classes st i))

let decided_under sc st' =
  let row = row_of sc.cache sc.classes st' in
  Array.fold_left
    (fun acc i ->
      if classify_row sc st' row i <> State.Informative then acc + 1 else acc)
    0 sc.informative

let decided_counts sc c =
  let st_pos, st_neg = hypothetical sc c in
  let count = function
    | None -> Array.length sc.informative
    | Some st' -> decided_under sc st'
  in
  (count st_pos, count st_neg)

let decided_cards sc c =
  let st_pos, st_neg = hypothetical sc c in
  let total =
    Array.fold_left
      (fun acc i -> acc + sc.classes.(i).Sigclass.card)
      0 sc.informative
  in
  let count = function
    | None -> total
    | Some st' ->
      let row = row_of sc.cache sc.classes st' in
      Array.fold_left
        (fun acc i ->
          if classify_row sc st' row i <> State.Informative then
            acc + sc.classes.(i).Sigclass.card
          else acc)
        0 sc.informative
  in
  (count st_pos, count st_neg)

let vs_split sc c =
  let st_pos, st_neg = hypothetical sc c in
  let vs = function None -> 0.0 | Some st' -> Version_space.count st' in
  (vs st_pos, vs st_neg)

(* ------------------------------------------------------------------ *)
(* Parallel candidate scoring.                                         *)

let domains_override = ref None

let domains () =
  match !domains_override with
  | Some d -> d
  | None ->
    let d =
      match Sys.getenv_opt "JIM_DOMAINS" with
      | Some v -> ( match int_of_string_opt (String.trim v) with
        | Some d when d >= 1 -> d
        | _ -> 1)
      | None -> 1
    in
    domains_override := Some d;
    d

let set_domains d = domains_override := Some (max 1 d)

(* Strict-improvement fold over [inf.(lo..hi-1)]; scanning in increasing
   index order makes ties resolve to the lowest index. *)
let chunk_argmax sc score inf lo hi =
  if hi <= lo then None
  else begin
    let bi = ref inf.(lo) and bs = ref (score sc inf.(lo)) in
    for j = lo + 1 to hi - 1 do
      let s = score sc inf.(j) in
      if s > !bs then begin
        bi := inf.(j);
        bs := s
      end
    done;
    Some (!bi, !bs)
  end

let best sc score =
  let inf = sc.informative in
  let k = Array.length inf in
  if k = 0 then None
  else begin
    let nd = min (domains ()) k in
    if nd <= 1 then Option.map fst (chunk_argmax sc score inf 0 k)
    else begin
      (* Each domain scores a contiguous chunk with a private clone
         (fresh memo tables; the shared inputs are immutable), then the
         chunk winners merge in chunk order with the same strict-> rule:
         bit-identical to the sequential scan. *)
      let clone () = create sc.st sc.classes sc.informative in
      let bounds d = (d * k / nd, (d + 1) * k / nd) in
      let spawned =
        Array.init (nd - 1) (fun d ->
            let lo, hi = bounds (d + 1) in
            let sc' = clone () in
            Domain.spawn (fun () -> chunk_argmax sc' score inf lo hi))
      in
      let first =
        let lo, hi = bounds 0 in
        chunk_argmax sc score inf lo hi
      in
      let winner =
        Array.fold_left
          (fun acc r ->
            match (acc, r) with
            | None, r -> r
            | acc, None -> acc
            | Some (_, bs), Some (j, s) when s > bs -> Some (j, s)
            | acc, _ -> acc)
          first
          (Array.map Domain.join spawned)
      in
      Option.map fst winner
    end
  end
