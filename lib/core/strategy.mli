(** Strategies Υ: given the current knowledge and the informative
    signature classes, choose the next tuple (class) to show the user.

    The catalogue follows the taxonomy of the paper: a [random] baseline,
    simple [local] strategies driven by a fixed order on signatures, and
    [lookahead] strategies that score each candidate by the quantity of
    information its label would bring (pruning counts or the entropy of
    the version-space split).  The exponential [optimal] yardstick lives
    in {!Optimal}.

    All scored strategies route through {!Scorer}, which memoises the
    per-candidate work and (with {!Scorer.set_domains} / [JIM_DOMAINS])
    scores candidates in parallel with deterministic picks. *)

type ctx = {
  state : State.t;
  classes : Sigclass.cls array;
  informative : int array;
      (** indices into [classes], first-occurrence order *)
  cache : Scorer.cache;
      (** classification memo shared across the session's rounds *)
  rng : Random.State.t;  (** private to the strategy *)
}

type t = {
  name : string;
  descr : string;
  kind : [ `Random | `Local | `Lookahead ];
  pick : ctx -> int option;
      (** [None] iff [informative] is empty.  Must return a member of
          [informative]. *)
}

val random : t
(** Uniformly random informative class. *)

val local_specific : t
(** Maximise [rank (s ∧ sig)]: ask about tuples sharing as many equalities
    with the current candidate [s] as possible (top-down sweep of the
    ideal). *)

val local_general : t
(** Minimise [rank (s ∧ sig)]: bottom-up sweep. *)

val local_lex : t
(** First informative class in a fixed lexicographic order on signatures —
    the simplest "fixed order" local strategy. *)

val lookahead_maximin : t
(** Maximise [min(#classes decided if +, #classes decided if −)] (the
    decided count includes the asked class). *)

val lookahead_expected : t
(** Maximise the mean of the two pruning counts, tuple-weighted: counts
    sum class cardinalities, so big uninformative chunks are pruned
    early. *)

val lookahead_entropy : t
(** Maximise the binary entropy of the version-space split
    [(|VS if +|, |VS if −|)] — prefers questions whose answers are most
    balanced, i.e. carry the most information about the goal.  When the
    counts saturate to [infinity] (wide instances) the entropy is
    undefined; the score falls back to the maximin pruning count instead
    of degenerating to the first informative class. *)

val all : t list
(** The catalogue above, in presentation order.  ({!lookahead2} and
    {!optimal} are not members: the former so the cheap catalogue stays
    cheap, the latter because it is exponential.) *)

val find : string -> t option
(** Catalogue lookup by name ({!all} only). *)

(** {1 The canonical name table}

    Every surface that names strategies — the CLI, the bench [compare]
    harness, the wire protocol — resolves names through {!of_string}, so
    there is exactly one table. *)

val lookahead2 : ?beam:int -> unit -> t
(** {!Lookahead2.pick} wrapped as ["lookahead-2"] (default beam 8). *)

val optimal : ?max_states:int -> unit -> t
(** {!Optimal.best_question} wrapped as ["optimal"]. *)

val names : string list
(** Every canonical strategy name: {!all} plus ["lookahead-2"] and
    ["optimal"]. *)

val of_string : string -> (t, string) result
(** Resolve any name in {!names} (also accepts the alias ["lookahead2"]);
    the error is a human-readable "unknown strategy" message listing the
    table.  Round-trips with {!to_string}. *)

val to_string : t -> string
(** The strategy's canonical name ([to_string s = s.name]). *)

(** {1 Helpers shared with {!Optimal} and the interaction modes} *)

val scorer_of : ctx -> Scorer.t
(** The round's scoring engine (shares the context's cache). *)

val decided_counts : State.t -> Sigclass.cls array -> int list -> int -> int * int
(** [decided_counts st classes informative c]: numbers of currently
    informative classes (including [c]) that become certain if class [c]
    is labelled [+] and [−] respectively.  A contradictory branch counts
    every remaining class as decided (that answer would end the session
    anyway — it cannot happen with a sound user).

    This is the {e unmemoised reference implementation}; strategies use
    the equivalent {!Scorer.decided_counts} (the equivalence is pinned
    by a property test). *)

val decided_cards : State.t -> Sigclass.cls array -> int list -> int -> int * int
(** Same, weighting each decided class by its tuple cardinality
    (unmemoised reference for {!Scorer.decided_cards}). *)

val hypothetical : State.t -> Jim_partition.Partition.t -> State.t option * State.t option
(** States after labelling a tuple of the given signature [+] / [−];
    [None] marks the contradictory branch. *)
