(** Crowdsourced labelling with redundancy.

    The paper positions JIM for crowdsourcing, where each answer costs
    money and workers err.  The standard mitigation is redundancy: ask
    each membership question to several workers and keep the majority
    answer.  This module runs the Fig. 2 loop with per-question majority
    voting, exposing the cost/accuracy trade-off that the E7 ablation
    bench sweeps.  Aggregation itself lives in {!Votes} — the same code
    the server's wire-level vote coordinator uses, so the in-process and
    wire crowd paths provably agree. *)

type outcome = {
  session : Session.outcome;   (** the loop's outcome under majority labels *)
  questions : int;             (** distinct tuples asked *)
  paid_labels : int;           (** total worker answers bought = questions × votes *)
  majority_flips : int;        (** questions where the majority overruled at
                                   least one dissenting worker *)
}

val run :
  ?seed:int ->
  votes:int ->
  strategy:Strategy.t ->
  worker:Oracle.t ->
  Jim_relational.Relation.t ->
  outcome
(** Each question is put to [votes] independent draws from [worker] (a
    noisy oracle yields independent errors per draw) and the majority
    label is absorbed.  [votes] must be odd and positive — raises
    [Invalid_argument] otherwise. *)
