module Relation = Jim_relational.Relation

type error = Contradiction | Nothing_to_undo

let error_to_string = function
  | Contradiction ->
    "the answer contradicts the earlier labels (no join predicate is \
     consistent with all of them)"
  | Nothing_to_undo -> "nothing to undo"

let pp_error fmt e = Format.pp_print_string fmt (error_to_string e)

type t = {
  n : int;
  classes : Sigclass.cls array;
  row_class : int array;  (** row number -> class index *)
  cache : Scorer.cache;
      (** classification memo shared by every scoring round of this
          engine: the work done evaluating a candidate is reused when its
          answer arrives *)
  mutable st : State.t;
  mutable statuses : State.status array;
  mutable asked : int;
  mutable positives : Jim_partition.Partition.t list;
      (** signatures labelled +, newest first (witnesses for Explain) *)
  mutable history : (Jim_partition.Partition.t * State.label) list;
      (** every absorbed label, newest first (for transcripts) *)
  mutable snapshots : (State.t * Jim_partition.Partition.t list) list;
      (** states before each absorbed label, newest first (for undo) *)
}

let refresh_statuses eng =
  eng.statuses <-
    Array.map (fun (c : Sigclass.cls) -> State.classify eng.st c.sg) eng.classes

(* Knowledge only grows, so certainty is monotone: a class decided under
   the old state stays decided (with the same polarity) under the new one
   — only the informative ones need reclassifying.  (The monotonicity is
   pinned down by the classify-vs-brute-force property test.) *)
let refresh_statuses_incremental eng =
  Array.iteri
    (fun i s ->
      if s = State.Informative then
        eng.statuses.(i) <- Scorer.class_status eng.cache eng.classes eng.st i)
    eng.statuses

(* [?cache], [?statuses] and [?row_class] let a caller that already
   derived the instance (the server's catalog) warm-start the engine:
   classes and row_class are read-only and shared as-is, the round-0
   statuses are copied (the incremental refresh mutates them in place),
   and the scorer memo is the shared one.  Without them the engine
   derives everything itself, exactly as before. *)
let of_classes ?cache ?statuses ?row_class ~n classes =
  let row_class =
    match row_class with
    | Some rc -> rc
    | None ->
      let total = Sigclass.total_rows classes in
      let rc = Array.make total 0 in
      Array.iteri
        (fun ci (c : Sigclass.cls) ->
          List.iter (fun r -> rc.(r) <- ci) c.rows)
        classes;
      rc
  in
  let cache =
    match cache with Some c -> c | None -> Scorer.new_cache ()
  in
  let eng =
    {
      n;
      classes;
      row_class;
      cache;
      st = State.create n;
      statuses = (match statuses with Some s -> Array.copy s | None -> [||]);
      asked = 0;
      positives = [];
      history = [];
      snapshots = [];
    }
  in
  (match statuses with None -> refresh_statuses eng | Some _ -> ());
  eng

let create ?cache rel =
  of_classes ?cache ~n:(Relation.arity rel) (Sigclass.classes rel)

let state eng = eng.st
let classes eng = eng.classes
let status eng i = eng.statuses.(i)
let row_status eng r = eng.statuses.(eng.row_class.(r))

let informative_array eng =
  let count = ref 0 in
  Array.iter
    (fun s -> if s = State.Informative then incr count)
    eng.statuses;
  let out = Array.make !count 0 in
  let j = ref 0 in
  Array.iteri
    (fun i s ->
      if s = State.Informative then begin
        out.(!j) <- i;
        incr j
      end)
    eng.statuses;
  out

let informative eng = Array.to_list (informative_array eng)

let finished eng =
  Array.for_all (fun s -> s <> State.Informative) eng.statuses

let asked eng = eng.asked

let ctx_of eng rng =
  {
    Strategy.state = eng.st;
    classes = eng.classes;
    informative = informative_array eng;
    cache = eng.cache;
    rng;
  }

let question eng strat rng =
  Metrics.time_pick (fun () -> strat.Strategy.pick (ctx_of eng rng))

let top_questions eng strat rng k =
  (* Mask already-proposed classes with a bool array over class indices
     (the informative sets are rebuilt per pick, so an O(k) membership
     scan per element would make this O(k^2)). *)
  let masked = Array.make (Array.length eng.classes) false in
  let base = informative_array eng in
  let rec go acc k =
    if k = 0 then List.rev acc
    else
      let remaining =
        Array.of_seq
          (Seq.filter (fun i -> not masked.(i)) (Array.to_seq base))
      in
      let ctx = { (ctx_of eng rng) with Strategy.informative = remaining } in
      let pick = Metrics.time_pick (fun () -> strat.Strategy.pick ctx) in
      match pick with
      | None -> List.rev acc
      | Some c ->
        masked.(c) <- true;
        go (c :: acc) (k - 1)
  in
  go [] k

(* Absorb a labelled signature that need not correspond to a class of the
   instance (transcript replay across instance revisions). *)
let absorb eng sg label =
  match State.add eng.st label sg with
  | Error `Contradiction -> Error Contradiction
  | Ok st' ->
    eng.snapshots <- (eng.st, eng.positives) :: eng.snapshots;
    eng.st <- st';
    eng.asked <- eng.asked + 1;
    if label = State.Pos then eng.positives <- sg :: eng.positives;
    eng.history <- (sg, label) :: eng.history;
    refresh_statuses_incremental eng;
    Ok ()

let answer eng c label = absorb eng eng.classes.(c).Sigclass.sg label

let history eng = List.rev eng.history

let undo eng =
  match (eng.snapshots, eng.history) with
  | [], _ | _, [] -> Error Nothing_to_undo
  | (st, positives) :: snaps, _ :: hist ->
    eng.st <- st;
    eng.positives <- positives;
    eng.snapshots <- snaps;
    eng.history <- hist;
    eng.asked <- eng.asked - 1;
    (* Statuses may loosen; the incremental refresh only tightens, so do
       the full recomputation here. *)
    refresh_statuses eng;
    Ok ()

let result eng = State.canonical eng.st

let positive_signatures eng = eng.positives

let explain_class eng c =
  Explain.explain eng.st ~positives:eng.positives eng.classes.(c).Sigclass.sg

let explain_row eng r = explain_class eng eng.row_class.(r)

type event = {
  step : int;
  cls : int;
  row : int;
  sg : Jim_partition.Partition.t;
  label : State.label;
  decided_after : int;
  tuples_decided_after : int;
  vs_after : float;
}

type outcome = {
  query : Jim_partition.Partition.t;
  events : event list;
  interactions : int;
  contradiction : bool;
}

let decided_totals eng =
  let classes_decided = ref 0 and tuples_decided = ref 0 in
  Array.iteri
    (fun i s ->
      if s <> State.Informative then begin
        incr classes_decided;
        tuples_decided := !tuples_decided + eng.classes.(i).Sigclass.card
      end)
    eng.statuses;
  (!classes_decided, !tuples_decided)

let run_engine ?(seed = 0) ~strategy ~oracle eng =
  let rng = Random.State.make [| seed |] in
  let events = ref [] in
  let rec loop step =
    match question eng strategy rng with
    | None ->
      {
        query = result eng;
        events = List.rev !events;
        interactions = eng.asked;
        contradiction = false;
      }
    | Some c ->
      let cls = eng.classes.(c) in
      let label = Oracle.label oracle cls.Sigclass.sg in
      (match answer eng c label with
      | Error _ ->
        {
          query = result eng;
          events = List.rev !events;
          interactions = eng.asked;
          contradiction = true;
        }
      | Ok () ->
        let decided, tuples_decided = decided_totals eng in
        events :=
          {
            step;
            cls = c;
            row = Sigclass.representative cls;
            sg = cls.Sigclass.sg;
            label;
            decided_after = decided;
            tuples_decided_after = tuples_decided;
            vs_after = Version_space.count eng.st;
          }
          :: !events;
        loop (step + 1))
  in
  loop 1

let run ?seed ~strategy ~oracle rel =
  run_engine ?seed ~strategy ~oracle (create rel)

let run_classes ?seed ~strategy ~oracle ~n classes =
  run_engine ?seed ~strategy ~oracle (of_classes ~n classes)
