module Partition = Jim_partition.Partition

type entry = { sg : Partition.t; label : State.label }

type t = {
  arity : int;
  entries : entry list;
  result : Partition.t option;
}

let label_char = function State.Pos -> "+" | State.Neg -> "-"

let of_outcome ~n (o : Session.outcome) =
  {
    arity = n;
    entries =
      List.map
        (fun (e : Session.event) ->
          { sg = e.Session.sg; label = e.Session.label })
        o.Session.events;
    result = Some o.Session.query;
  }

let of_engine eng =
  {
    arity = Partition.size (Session.result eng);
    entries =
      List.map (fun (sg, label) -> { sg; label }) (Session.history eng);
    result = (if Session.finished eng then Some (Session.result eng) else None);
  }

let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "jim-transcript 1\n";
  Buffer.add_string buf (Printf.sprintf "arity %d\n" t.arity);
  List.iter
    (fun { sg; label } ->
      Buffer.add_string buf
        (Printf.sprintf "label %s %s\n" (Partition.to_string sg)
           (label_char label)))
    t.entries;
  (match t.result with
  | Some r ->
    Buffer.add_string buf (Printf.sprintf "result %s\n" (Partition.to_string r))
  | None -> ());
  Buffer.contents buf

let ( let* ) = Result.bind

let of_string s =
  let lines =
    String.split_on_char '\n' s
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  match lines with
  | [] -> Error "empty transcript"
  | header :: rest ->
    let* () =
      if String.equal header "jim-transcript 1" then Ok ()
      else Error "unknown transcript header"
    in
    let* arity, rest =
      match rest with
      | first :: more -> (
        match String.split_on_char ' ' first with
        | [ "arity"; n ] -> (
          match int_of_string_opt n with
          | Some n when n > 0 -> Ok (n, more)
          | _ -> Error "bad arity")
        | _ -> Error "expected an arity line")
      | [] -> Error "missing arity line"
    in
    let parse_partition str =
      let* p = Partition.of_string str in
      if Partition.size p <> arity then Error "signature arity mismatch"
      else Ok p
    in
    let* entries_rev, result =
      List.fold_left
        (fun acc line ->
          let* entries, result = acc in
          let* () =
            if result <> None then Error "content after the result line"
            else Ok ()
          in
          match String.split_on_char ' ' line with
          | [ "label"; sg; lbl ] ->
            let* sg = parse_partition sg in
            let* label =
              match lbl with
              | "+" -> Ok State.Pos
              | "-" -> Ok State.Neg
              | _ -> Error ("bad label " ^ lbl)
            in
            Ok ({ sg; label } :: entries, None)
          | [ "result"; r ] ->
            let* r = parse_partition r in
            Ok (entries, Some r)
          | _ -> Error ("bad transcript line: " ^ line))
        (Ok ([], None))
        rest
    in
    Ok { arity; entries = List.rev entries_rev; result }

let replay t eng =
  if Partition.size (Session.result eng) <> t.arity then Error `Arity_mismatch
  else
    let rec go = function
      | [] -> Ok ()
      | { sg; label } :: rest -> (
        match Session.absorb eng sg label with
        | Ok () -> go rest
        | Error _ -> Error `Contradiction)
    in
    go t.entries
