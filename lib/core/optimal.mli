(** The exact optimal strategy: the question policy minimising the
    worst-case number of interactions.  Exponential (it explores the
    full answer tree with memoisation on knowledge states), which is why
    the paper deems it unusable in practice and JIM ships heuristics; we
    keep it as the yardstick the heuristics are measured against on small
    instances. *)

exception Too_large

val worst_case_depth :
  ?max_states:int -> State.t -> Sigclass.cls array -> int
(** Minimal number of questions that guarantees identification (up to
    instance-equivalence) from the given state, whatever the user answers
    (answers must stay consistent).  Raises {!Too_large} after visiting
    [max_states] (default [200_000]) distinct knowledge states. *)

val best_question :
  ?max_states:int -> State.t -> Sigclass.cls array -> int option
(** A class achieving {!worst_case_depth}; [None] when nothing is
    informative.

    The {!Strategy.t} wrapper lives in {!Strategy.optimal} (the strategy
    catalogue owns every name so that {!Strategy.of_string} is the one
    canonical table). *)
