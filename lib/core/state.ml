module Partition = Jim_partition.Partition
module Lattice = Jim_partition.Lattice

type label = Pos | Neg

type t = {
  n : int;
  s : Partition.t;
  negatives : Partition.t list;
  pos_count : int;
  neg_count : int;
}

let create n =
  { n; s = Partition.top n; negatives = []; pos_count = 0; neg_count = 0 }

let normalise_negatives s negs =
  (* Clip into ↓s, drop the ones swallowed by others, sort for canonical
     keys.  A clipped negative equal to s means contradiction — callers
     check before storing. *)
  List.map (Partition.meet s) negs
  |> Lattice.maximal_elements
  |> List.sort Partition.compare

let check_arity st sg =
  if Partition.size sg <> st.n then invalid_arg "State: signature arity mismatch"

let add st label sg =
  check_arity st sg;
  match label with
  | Pos ->
    let s' = Partition.meet st.s sg in
    let negatives' = normalise_negatives s' st.negatives in
    if List.exists (Partition.equal s') negatives' then Error `Contradiction
    else
      Ok
        {
          st with
          s = s';
          negatives = negatives';
          pos_count = st.pos_count + 1;
        }
  | Neg ->
    if Partition.refines st.s sg then Error `Contradiction
    else
      let negatives' = normalise_negatives st.s (sg :: st.negatives) in
      Ok { st with negatives = negatives'; neg_count = st.neg_count + 1 }

let add_exn st label sg =
  match add st label sg with
  | Ok st' -> st'
  | Error `Contradiction -> invalid_arg "State.add_exn: contradictory label"

let hypothetical st sg =
  let branch label =
    match add st label sg with
    | Ok st' -> Some st'
    | Error `Contradiction -> None
  in
  (branch Pos, branch Neg)

type status = Certain_pos | Certain_neg | Informative

let classify st sg =
  check_arity st sg;
  if Partition.refines st.s sg then Certain_pos
  else
    let m = Partition.meet st.s sg in
    if List.exists (fun u -> Partition.refines m u) st.negatives then
      Certain_neg
    else Informative

let selects st sg = Partition.refines st.s sg

let consistent st q =
  Partition.refines q st.s
  && not (List.exists (fun u -> Partition.refines q u) st.negatives)

let canonical st = st.s

let key st =
  String.concat "|"
    (Partition.to_string st.s :: List.map Partition.to_string st.negatives)

let pp fmt st =
  Format.fprintf fmt "@[<v>s = %a@ negatives = {%s}@ (%d+, %d-)@]"
    Partition.pp st.s
    (String.concat "; " (List.map Partition.to_string st.negatives))
    st.pos_count st.neg_count
