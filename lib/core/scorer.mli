(** The round-scoped scoring engine behind every strategy.

    Lookahead strategies re-classify every informative class under two
    hypothetical states per candidate — O(k²) lattice meets per question
    when done naively.  A scorer shares the per-round [meet s sig_i]
    table across candidates, memoises classifications in a {!cache}
    keyed by [State.key] × class index (hypothetical states repeat
    within a round and across rounds: the answered branch becomes the
    next base state), and optionally fans candidate scoring out across
    domains with a deterministic lowest-index-wins merge, so parallel
    and sequential picks are bit-identical.

    Perf counters (meets, classifications, cache hits/misses, pick wall
    time) are recorded in {!Metrics}. *)

type t
(** A scorer for one question round: a state, the signature classes and
    the informative set.  Cheap to build; holds per-round memo tables. *)

type cache
(** The cross-round classification memo.  A {!Session} keeps one per
    engine so the work done evaluating a candidate is reused when its
    answer arrives (and by {!Session.top_questions}'s repeated picks).

    A cache may also be shared by every session on one instance (the
    server's catalog does this): rows are interned in a striped
    structure whose reads are lock-free — only interning a new row
    takes a per-stripe mutex — and every memoised value is a pure
    function of its key, so sharing changes hit/miss counts but never a
    status, score, or pick. *)

val new_cache : unit -> cache

val create : ?cache:cache -> State.t -> Sigclass.cls array -> int array -> t
(** [create st classes informative]: scorer over the given informative
    class indices (first-occurrence order).  A fresh private cache is
    used unless [?cache] supplies a shared one. *)

val of_state : ?cache:cache -> State.t -> Sigclass.cls array -> t
(** Like {!create}, computing the informative set itself. *)

val informative_of : State.t -> Sigclass.cls array -> int array
(** Indices of informative classes, first-occurrence order. *)

val state : t -> State.t
val informative : t -> int array

(** {1 Memoised per-candidate work} *)

val meet_s : t -> int -> Jim_partition.Partition.t
(** [meet s sig_i], computed once per round per class. *)

val meet_rank : t -> int -> int

val hypothetical : t -> int -> State.t option * State.t option
(** States after answering candidate [c] with [+] / [−]; [None] marks
    the contradictory branch.  Memoised per candidate. *)

val decided_counts : t -> int -> int * int
(** Memoised {!Strategy.decided_counts} (same semantics: the asked class
    counts as decided; a dead branch decides everything). *)

val decided_cards : t -> int -> int * int
(** Same, weighting each decided class by its tuple cardinality. *)

val decided_under : t -> State.t -> int
(** Number of the scorer's informative classes decided in an arbitrary
    (hypothetical) state — the depth-2 lookahead building block. *)

val vs_split : t -> int -> float * float
(** Version-space sizes of the two hypothetical branches (0 for a dead
    branch).  May be [infinity] for wide instances — see the entropy
    strategy's fallback. *)

val class_status : cache -> Sigclass.cls array -> State.t -> int -> State.status
(** Classification of one class through the shared cache — lets the
    session's status refresh reuse the scoring round's work. *)

(** {1 Parallel argmax} *)

val best : t -> (t -> int -> float) -> int option
(** [best sc score] = the informative class maximising [score],
    lowest index winning ties; [None] iff nothing is informative.
    With {!domains} [> 1] the candidates are scored across that many
    domains ([score] receives each domain's private scorer clone, so it
    must only depend on the scorer argument and the candidate).  The
    result is bit-identical to the sequential scan. *)

val domains : unit -> int
(** Scoring domains used by {!best}: the last {!set_domains} value,
    else [JIM_DOMAINS], else 1. *)

val set_domains : int -> unit
(** Override the domain count (the [--domains] CLI flag); clamped to
    [>= 1]. *)
