module Relation = Jim_relational.Relation

type report = {
  mode : string;
  labels_given : int;
  auto_determined : int;
  total_tuples : int;
  query : Jim_partition.Partition.t;
}

let finish mode eng labels_given =
  let total_tuples = Sigclass.total_rows (Session.classes eng) in
  {
    mode;
    labels_given;
    auto_determined = total_tuples - labels_given;
    total_tuples;
    query = Session.result eng;
  }

(* Label a row's class; a contradiction is impossible with the sound
   oracles these simulations use, so it is an invariant violation. *)
let label_row eng oracle row =
  let classes = Session.classes eng in
  let ci =
    (* Row -> class: rows are grouped in classes; find the class holding
       this row. *)
    let rec go i =
      if i >= Array.length classes then
        invalid_arg "Interaction: row not in any class"
      else if List.mem row classes.(i).Sigclass.rows then i
      else go (i + 1)
    in
    go 0
  in
  let sg = classes.(ci).Sigclass.sg in
  let label = Oracle.label oracle sg in
  match Session.answer eng ci label with
  | Ok () -> ()
  | Error _ -> invalid_arg "Interaction: oracle contradicted itself"

let mode1_label_all ~order ~oracle rel =
  let eng = Session.create rel in
  let labels = ref 0 in
  List.iter
    (fun row ->
      (* She labels everything, even what the engine already knows: the
         engine only absorbs the informative ones (absorbing a certain
         label is a no-op for the state) but each costs her an
         interaction. *)
      incr labels;
      let ci_status = Session.row_status eng row in
      if ci_status = State.Informative then label_row eng oracle row)
    order;
  finish "1-label-all" eng !labels

let mode2_gray_out ~order ~oracle rel =
  let eng = Session.create rel in
  let labels = ref 0 in
  (try
     List.iter
       (fun row ->
         if Session.finished eng then raise Exit;
         if Session.row_status eng row = State.Informative then begin
           incr labels;
           label_row eng oracle row
         end)
       order
   with Exit -> ());
  finish "2-gray-out" eng !labels

let mode3_top_k ~k ?(seed = 0) ~strategy ~oracle rel =
  let eng = Session.create rel in
  let rng = Random.State.make [| seed |] in
  let labels = ref 0 in
  let rec rounds () =
    if not (Session.finished eng) then begin
      let proposals = Session.top_questions eng strategy rng k in
      (* The whole round is labelled: answers given earlier in the round
         may make later proposals redundant, but the user cannot know —
         that extra cost is exactly what mode 4 shaves off. *)
      List.iter
        (fun ci ->
          incr labels;
          let sg = (Session.classes eng).(ci).Sigclass.sg in
          match Session.answer eng ci (Oracle.label oracle sg) with
          | Ok () -> ()
          | Error _ -> invalid_arg "Interaction: oracle contradicted itself")
        proposals;
      rounds ()
    end
  in
  rounds ();
  {
    (finish "3-top-k" eng !labels) with
    mode = Printf.sprintf "3-top-%d" k;
  }

let mode4_interactive ?seed ~strategy ~oracle rel =
  let outcome = Session.run ?seed ~strategy ~oracle rel in
  let total_tuples = Relation.cardinality rel in
  {
    mode = "4-interactive";
    labels_given = outcome.Session.interactions;
    auto_determined = total_tuples - outcome.Session.interactions;
    total_tuples;
    query = outcome.Session.query;
  }
