exception Too_large

(* Worst-case depth of the optimal decision tree:
     depth(st) = 0                                  if nothing informative
     depth(st) = 1 + min_c max over consistent answers of depth(st + answer)
   A branch whose answer would contradict the labels is impossible for a
   sound user, so it does not constrain the max. *)

let search ?(max_states = 200_000) st classes =
  let memo : (string, int) Hashtbl.t = Hashtbl.create 1024 in
  let visited = ref 0 in
  let rec depth st =
    let k = State.key st in
    match Hashtbl.find_opt memo k with
    | Some d -> d
    | None ->
      incr visited;
      if !visited > max_states then raise Too_large;
      let informative = informative_of st in
      let d =
        match informative with
        | [] -> 0
        | _ ->
          let best = ref max_int in
          List.iter
            (fun c ->
              (* Lower bound: any question costs at least 1. *)
              if !best > 1 then begin
                let worst = branch_worst st c in
                if worst < !best then best := worst
              end)
            informative;
          !best
      in
      Hashtbl.replace memo k d;
      d
  and branch_worst st c =
    let sg = classes.(c).Sigclass.sg in
    let st_pos, st_neg = State.hypothetical st sg in
    let arm = function None -> 0 | Some st' -> depth st' in
    1 + max (arm st_pos) (arm st_neg)
  and informative_of st =
    let out = ref [] in
    Array.iteri
      (fun i (c : Sigclass.cls) ->
        if State.classify st c.sg = State.Informative then out := i :: !out)
      classes;
    List.rev !out
  in
  let informative = informative_of st in
  match informative with
  | [] -> (0, None)
  | _ ->
    let best_d = ref max_int and best_c = ref None in
    List.iter
      (fun c ->
        let worst = branch_worst st c in
        if worst < !best_d then begin
          best_d := worst;
          best_c := Some c
        end)
      informative;
    (!best_d, !best_c)

let worst_case_depth ?max_states st classes =
  fst (search ?max_states st classes)

let best_question ?max_states st classes =
  snd (search ?max_states st classes)
