(** Two-step lookahead: an ablation between the one-step heuristics and
    the full exponential {!Optimal} policy.

    Scores a candidate by the worst answer's {e best follow-up}: the
    guaranteed number of classes decided after this question plus the
    best one-step maximin available in the resulting state.  Depth-2
    minimax is cubic in the number of informative classes, so candidates
    are pre-filtered to the [beam] best one-step scores. *)

val pick :
  ?beam:int ->
  cache:Scorer.cache ->
  State.t -> Sigclass.cls array -> int array -> int option
(** [pick ~cache st classes informative] — the raw selection function
    (default beam 8).  The {!Strategy.t} wrapper, named ["lookahead-2"],
    is {!Strategy.lookahead2}. *)
