type outcome = {
  session : Session.outcome;
  questions : int;
  paid_labels : int;
  majority_flips : int;
}

let majority votes worker sg =
  (* Draw in a loop (not List.init) so the worker's RNG is consumed in a
     defined order; the tally itself is order-independent. *)
  let labels = ref [] in
  for _ = 1 to votes do
    labels := Oracle.label worker sg :: !labels
  done;
  match Votes.majority !labels with
  | { Votes.label = Some label; dissent } -> (label, dissent)
  | { Votes.label = None; _ } ->
    (* an odd ballot count cannot tie; [run] rejects even counts *)
    assert false

let run ?seed ~votes ~strategy ~worker rel =
  if votes <= 0 || votes mod 2 = 0 then
    invalid_arg "Crowd.run: votes must be odd and positive";
  let questions = ref 0 and flips = ref 0 in
  let voting =
    Oracle.of_fun (fun sg ->
        incr questions;
        let label, overruled = majority votes worker sg in
        if overruled then incr flips;
        label)
  in
  let session = Session.run ?seed ~strategy ~oracle:voting rel in
  {
    session;
    questions = !questions;
    paid_labels = !questions * votes;
    majority_flips = !flips;
  }
