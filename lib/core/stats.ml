type t = {
  labeled : int;
  auto_determined : int;
  still_informative : int;
  total : int;
  labeled_pct : float;
  auto_pct : float;
  version_space : float;
  scoring : Metrics.snapshot;
}

let pct part total =
  if total = 0 then 0.0 else 100.0 *. float_of_int part /. float_of_int total

let build ~labeled ~decided_tuples ~total ~version_space =
  let auto_determined = max 0 (decided_tuples - labeled) in
  {
    labeled;
    auto_determined;
    still_informative = total - decided_tuples;
    total;
    labeled_pct = pct labeled total;
    auto_pct = pct auto_determined total;
    version_space;
    scoring = Metrics.snapshot ();
  }

let of_engine eng =
  let classes = Session.classes eng in
  let decided_tuples = ref 0 in
  Array.iteri
    (fun i (c : Sigclass.cls) ->
      if Session.status eng i <> State.Informative then
        decided_tuples := !decided_tuples + c.Sigclass.card)
    classes;
  build ~labeled:(Session.asked eng) ~decided_tuples:!decided_tuples
    ~total:(Sigclass.total_rows classes)
    ~version_space:(Version_space.count (Session.state eng))

let of_outcome ~total (o : Session.outcome) =
  let decided_tuples, vs =
    match List.rev o.Session.events with
    | [] -> (0, nan)
    | last :: _ -> (last.Session.tuples_decided_after, last.Session.vs_after)
  in
  build ~labeled:o.Session.interactions ~decided_tuples ~total ~version_space:vs

let to_string s =
  let base =
    Printf.sprintf
      "labeled %d/%d (%.1f%%), auto-determined %d (%.1f%%), open %d, VS %.0f"
      s.labeled s.total s.labeled_pct s.auto_determined s.auto_pct
      s.still_informative s.version_space
  in
  if s.scoring.Metrics.picks = 0 then base
  else base ^ "; scorer: " ^ Metrics.to_string s.scoring

let pp fmt s = Format.pp_print_string fmt (to_string s)
