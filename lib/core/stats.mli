(** Progress statistics shown in the interface after every interaction
    ("the total number (and the relative percentage) of tuples that have
    been explicitly labeled by the user or deemed as uninformative"). *)

type t = {
  labeled : int;              (** tuples explicitly labelled *)
  auto_determined : int;      (** tuples decided without a label *)
  still_informative : int;
  total : int;
  labeled_pct : float;
  auto_pct : float;
  version_space : float;      (** consistent predicates remaining *)
  scoring : Metrics.snapshot;
      (** scorer perf counters at snapshot time (process-wide) *)
}

val of_engine : Session.t -> t

val of_outcome : total:int -> Session.outcome -> t
(** Final statistics of a closed-loop run. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
