(** The learner's knowledge state: everything JIM retains about the labels
    seen so far, in the compact normal form that makes consistency and
    informativeness checks polynomial.

    Positives are summarised by their meet [s] (the most specific
    consistent predicate); negatives by the ⊑-maximal antichain of their
    signatures clipped into [↓s].  A predicate [θ] is consistent iff
    [θ ⊑ s] and [θ ⋢ u] for every stored negative [u].

    Values are immutable; {!add} returns a new state, which is what lets
    lookahead strategies evaluate hypothetical answers for free. *)

type label = Pos | Neg

type t = private {
  n : int;  (** number of attributes *)
  s : Jim_partition.Partition.t;
      (** meet of the positive signatures; [Partition.top n] initially *)
  negatives : Jim_partition.Partition.t list;
      (** ⊑-maximal negative signatures, each clipped to [↓s] (strictly
          below [s]); sorted by [Partition.compare] *)
  pos_count : int;
  neg_count : int;
}

val create : int -> t
(** No examples: every predicate over [n] attributes is consistent. *)

val add :
  t -> label -> Jim_partition.Partition.t -> (t, [ `Contradiction ]) result
(** Record the signature of a labelled tuple.  [`Contradiction] means no
    predicate is consistent with the labels any more (only possible with a
    noisy user); the state is unchanged in that case. *)

val add_exn : t -> label -> Jim_partition.Partition.t -> t
(** Raises [Invalid_argument] on contradiction. *)

val hypothetical : t -> Jim_partition.Partition.t -> t option * t option
(** States after labelling a tuple of the given signature [+] / [−];
    [None] marks the contradictory branch.  The helper behind every
    lookahead strategy (and {!Optimal}'s minimax search). *)

type status = Certain_pos | Certain_neg | Informative

val classify : t -> Jim_partition.Partition.t -> status
(** Where does a tuple with this signature stand?
    - [Certain_pos]: every consistent predicate selects it ([s ⊑ sig]);
    - [Certain_neg]: no consistent predicate selects it
      ([s ∧ sig ⊑ u] for some negative [u]);
    - [Informative]: consistent predicates disagree — labelling it will
      strictly shrink the version space. *)

val selects : t -> Jim_partition.Partition.t -> bool
(** Does the canonical predicate [s] select a tuple with this signature? *)

val consistent : t -> Jim_partition.Partition.t -> bool
(** Is the given predicate consistent with the labels? *)

val canonical : t -> Jim_partition.Partition.t
(** The most specific consistent predicate, [s]. *)

val key : t -> string
(** Canonical serialisation of [(s, negatives)]; equal states (same
    consistent set) produce equal keys.  Used to memoise the optimal
    strategy. *)

val pp : Format.formatter -> t -> unit
