(** Process-wide performance counters for the strategy scoring engine:
    lattice meets computed, {!State.classify} evaluations, memo-cache
    hits/misses and per-pick wall time.  Counters are atomic, so scoring
    domains spawned by {!Scorer.best} update them safely; they are
    surfaced through {!Stats}, the TUI progress panel and the bench
    [compare] harness ([BENCH_strategies.json]). *)

type snapshot = {
  meets : int;          (** [Partition.meet]s computed by the scorer *)
  classify_calls : int; (** classifications actually evaluated *)
  cache_hits : int;     (** classifications answered from the memo *)
  cache_misses : int;
  picks : int;          (** questions selected *)
  pick_time_ns : int;   (** total wall time spent selecting, ns *)
  last_pick_ns : int;   (** wall time of the most recent pick, ns *)
}

val reset : unit -> unit
(** Zero every counter (bench harnesses call this between strategies). *)

val snapshot : unit -> snapshot

(** {1 Snapshot arithmetic}

    The counters are process-global, so a server hosting many concurrent
    sessions cannot report {!snapshot} per session — it would mix every
    session's work.  Instead each request takes a snapshot before and
    after its engine work and accumulates the {!diff}; the sum is that
    session's own counters (up to work racing in from requests of other
    sessions that overlap the same window). *)

val zero : snapshot

val diff : snapshot -> snapshot -> snapshot
(** [diff later earlier]: field-wise difference — the work recorded
    between the two snapshots.  [last_pick_ns] is taken from [later]. *)

val add : snapshot -> snapshot -> snapshot
(** Field-wise sum ([last_pick_ns] is taken from the second argument, the
    more recent increment). *)

(** {1 Recording (called by the scorer and the session engine)} *)

val record_meet : unit -> unit
val record_classify : unit -> unit
val record_hit : unit -> unit
val record_miss : unit -> unit
val record_pick : ns:int -> unit

val now_ns : unit -> int
(** Wall clock in nanoseconds (microsecond resolution). *)

val time_pick : (unit -> 'a) -> 'a
(** Run a question selection, recording its wall time as one pick. *)

(** {1 Derived figures} *)

val hit_rate : snapshot -> float
(** Hits / (hits + misses); 0 when the cache was never consulted. *)

val avg_pick_ns : snapshot -> float

val to_string : snapshot -> string
val to_json : snapshot -> string
(** One-line JSON object (the [BENCH_strategies.json] per-strategy shape). *)

val pp : Format.formatter -> snapshot -> unit
