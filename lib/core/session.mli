(** The interactive inference engine of Fig. 2: maintain the knowledge
    state over an instance's signature classes, hand out questions
    according to a strategy, absorb answers, detect termination.

    The engine is a thin mutable shell over the immutable {!State.t}
    (needed by the TUI, which interleaves rendering with answers);
    {!run} is the closed-loop driver used by experiments. *)

type t

type error = Contradiction | Nothing_to_undo
(** Every way an engine operation can be refused.  One concrete type (not
    per-function polymorphic variants) so callers — in particular the
    wire protocol — can serialise and report engine errors uniformly. *)

val error_to_string : error -> string
val pp_error : Format.formatter -> error -> unit

val create : ?cache:Scorer.cache -> Jim_relational.Relation.t -> t
(** Precomputes the signature classes of the instance.  [?cache]
    supplies a shared scorer memo (see {!Scorer.cache}); by default the
    engine gets a fresh private one. *)

val of_classes :
  ?cache:Scorer.cache ->
  ?statuses:State.status array ->
  ?row_class:int array ->
  n:int ->
  Sigclass.cls array ->
  t
(** Engine over pre-built classes ([n] = attribute count); for synthetic
    workloads, and for warm starts off a catalog entry: [?statuses]
    supplies the round-0 class statuses (copied — the engine mutates its
    own) and [?row_class] the row → class map, skipping both
    derivations; [?cache] as in {!create}.  The optional arguments must
    describe exactly these [classes]. *)

val state : t -> State.t
val classes : t -> Sigclass.cls array

val status : t -> int -> State.status
(** Current status of a class (memoised between answers). *)

val row_status : t -> int -> State.status
(** Status of an instance row (mode-2 graying). *)

val informative : t -> int list
(** Indices of informative classes, first-occurrence order. *)

val finished : t -> bool

val asked : t -> int
(** Number of answers absorbed so far. *)

val question : t -> Strategy.t -> Random.State.t -> int option
(** Ask the strategy for the next class; [None] iff finished. *)

val top_questions : t -> Strategy.t -> Random.State.t -> int -> int list
(** Greedy top-[k] ranking: repeatedly ask the strategy, masking what it
    already proposed (mode 3 of Fig. 3). *)

val answer : t -> int -> State.label -> (unit, error) result
(** Absorb the user's label for a class.  On [Error Contradiction] the
    engine is unchanged ([Nothing_to_undo] cannot occur here). *)

val absorb :
  t -> Jim_partition.Partition.t -> State.label -> (unit, error) result
(** Absorb a labelled signature directly (it need not be a class of the
    instance) — transcript replay across instance revisions. *)

val history : t -> (Jim_partition.Partition.t * State.label) list
(** Every label absorbed so far, in chronological order. *)

val undo : t -> (unit, error) result
(** Retract the most recent label (the user mis-clicked): the state,
    statuses, history and counters roll back to just before it. *)

val result : t -> Jim_partition.Partition.t
(** The inferred predicate (canonical representative [s]); meaningful once
    {!finished}. *)

val positive_signatures : t -> Jim_partition.Partition.t list
(** Signatures answered [+] so far, newest first (the witnesses
    {!Explain} quotes). *)

val explain_class : t -> int -> Explain.why
(** Certificate for a class's current status (see {!Explain}). *)

val explain_row : t -> int -> Explain.why

(** {1 Closed-loop driver} *)

type event = {
  step : int;
  cls : int;                      (** class asked *)
  row : int;                      (** representative row shown *)
  sg : Jim_partition.Partition.t;
  label : State.label;
  decided_after : int;            (** classes certain after this answer *)
  tuples_decided_after : int;     (** tuples (cardinality-weighted) certain *)
  vs_after : float;               (** version-space size after this answer *)
}

type outcome = {
  query : Jim_partition.Partition.t;
  events : event list;            (** chronological *)
  interactions : int;             (** questions answered *)
  contradiction : bool;           (** true iff aborted on an inconsistent user *)
}

val run :
  ?seed:int -> strategy:Strategy.t -> oracle:Oracle.t ->
  Jim_relational.Relation.t -> outcome

val run_classes :
  ?seed:int -> strategy:Strategy.t -> oracle:Oracle.t ->
  n:int -> Sigclass.cls array -> outcome

val run_engine :
  ?seed:int -> strategy:Strategy.t -> oracle:Oracle.t -> t -> outcome
(** Drive an already-built engine to completion — the building block of
    {!run} and {!run_classes}, exposed so warm-started engines (see
    {!of_classes}) can be driven the same way. *)
