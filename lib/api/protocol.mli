(** The versioned, serialisable facade over the inference engine: every
    way a client can drive a session, and every reply the service can
    give, as plain OCaml data with a stable JSON encoding.

    This is the boundary the demo paper's interactive front-end (Fig. 2–3)
    talks across, made explicit so sessions can live behind a socket:
    remote front-ends, crowd workers and load generators all speak these
    messages.  The codec is total in both directions — qcheck pins
    [decode ∘ encode = id] for every constructor — and errors are typed
    (a saturated server answers {!Server_busy}, never hangs or drops the
    line).

    Wire shape: one JSON object per line.  Requests carry
    [{"jim": version, "req": "<tag>", ...}], responses
    [{"jim": version, "resp": "<tag>", ...}].  Partitions travel in their
    canonical [Partition.to_string] block syntax (e.g. ["{0,2}{1}"]),
    labels as ["+"] / ["-"]. *)

type instance_source =
  | Builtin of string
      (** A named built-in instance: ["flights"] (the paper's Fig. 1
          travel-agency table) or ["setcards"] (the Fig. 5 pairing
          scenario). *)
  | Synthetic of {
      n_attrs : int;
      n_tuples : int;
      domain : int;
      goal_rank : int;
      seed : int;
    }
      (** Server-side {!Jim_workloads.Synthetic.generate} with these
          parameters (deterministic in [seed], so a client can regenerate
          the instance — and its planted goal — locally). *)
  | Csv_inline of string
      (** CSV text shipped in the request (header row, types inferred). *)
  | Catalog of string
      (** An instance already in the server's catalog, named by the
          canonical CSV fingerprint a {!Register_instance} (or an
          earlier {!Started} on the same data) returned.  Starting from
          a fingerprint ships no data and re-derives nothing; a miss
          answers {!Unknown_instance}. *)

type question = {
  cls : int;  (** class index — what {!Answer} echoes back *)
  row : int;  (** representative row to show the user *)
  sg : Jim_partition.Partition.t;
}

type request =
  | Start_session of { source : instance_source; strategy : string; seed : int }
  | Get_question of { session : int }
      (** Idempotent: the pending question is computed once and repeated
          until an answer or undo invalidates it (so re-asking does not
          advance the strategy's RNG). *)
  | Top_questions of { session : int; k : int }
      (** Greedy top-[k] ranking (mode 3 of Fig. 3).  Not idempotent:
          each call re-runs the strategy with masking. *)
  | Answer of { session : int; cls : int; label : Jim_core.State.label }
  | Undo of { session : int }
  | Explain of { session : int; cls : int }
  | Result of { session : int }
  | Stats of { session : int }
  | Get_transcript of { session : int }
      (** Export the session's audit log in the {!Jim_core.Transcript}
          text format — the same record of labels the durable store
          persists, so a client can archive or later [--resume] it. *)
  | End_session of { session : int }
  | Register_instance of { source : instance_source }
      (** Resolve [source] into the server-wide instance catalog without
          starting a session and answer {!Registered} with its handle.
          Idempotent: re-registering the same data (under any source
          that renders to the same canonical CSV) returns the same
          fingerprint and derives nothing.  Registering [Catalog fp]
          just looks [fp] up. *)
  | Catalog_stats
      (** Ask for the server's {!Catalog_info} counters (entries, bytes,
          pinned refcounts, hit/miss/eviction/derivation totals).  Sent
          to a router it fans out to every shard and the counters are
          summed. *)
  | Start_pinned of {
      session : int;
      source : instance_source;
      strategy : string;
      seed : int;
    }
      (** Shard-internal [Start_session] with a router-assigned session
          id.  The router allocates globally-unique ids, journals the
          placement, then forwards the start as [Start_pinned] so the
          shard's reply carries the global id unchanged.  A shard
          refuses an id already in use ({!Bad_request}) and bumps its
          own allocator past [session]; a router refuses the request
          from clients. *)
  | Repl_install of { gen : int; snapshot : string option }
      (** Replication control (primary → standby): reset the standby to
          generation [gen], seeding its shadow state from [snapshot]
          (the primary's current {!Jim_store.Snapshot} text, [None] when
          the primary has no snapshot yet) and opening a fresh standby
          journal.  Sent once when the replication channel attaches; the
          primary then streams its existing journal records before any
          live ones.  Reply: {!Repl_ok}. *)
  | Repl_rotate of { gen : int }
      (** Replication control: the primary checkpointed into generation
          [gen].  The standby writes its {e own} snapshot from its
          shadow state (deterministic, byte-identical to the primary's)
          and starts a fresh journal for [gen].  Idempotent for the
          current generation.  Reply: {!Repl_ok}. *)
  | Repl_batch of { records : string list }
      (** Replication control (primary → standby): a group-commit batch
          of whole journal records ({!Jim_store.Journal.encode_record}
          bytes, in append order).  The standby applies the batch
          atomically — one combined journal append under a single fsync
          barrier — and replies {!Repl_ok} with the batch's high-water
          mark, so semi-sync replication costs one round-trip per batch
          instead of one per record.  Additive v1 extension: a primary
          only sends it where a single raw record went before. *)
  | Repl_status
      (** Ask a standby for its durable position; replies {!Repl_ok}
          with the generation and the count of group-committed records
          in it (the durable prefix).  Also answered by a {e primary}
          with an attached standby, which replies {!Repl_lag} instead —
          how far its standby trails — so a router can surface
          batching-induced lag in {!Ring_info}. *)
  | Promote
      (** Turn a standby into a serving shard: close the standby
          journal, run real recovery over the streamed journal (the same
          bit-identical replay path as a restart) and start serving the
          v1 protocol.  Reply: {!Promoted}. *)
  | Ring_status
      (** Ask a router for its consistent-hash ring membership and the
          number of placed sessions.  Reply: {!Ring_info}. *)
  | Labeler_attach of { session : int }
      (** Join session [session] as a crowd labeler.  Reply:
          {!Labeler_attached} with this labeler's id and the session's
          quorum size.  Only answered by a server started with crowd
          labeling enabled ([jim serve --votes K]); otherwise a
          {!Bad_request} with the pinned reason ["crowd labeling
          disabled (start the server with --votes)"]. *)
  | Labeler_poll of { session : int; labeler : int }
      (** Ask for the session's current voting round — the fan-out half
          of the question broadcast, pull-shaped so it rides the plain
          request/reply wire.  Reply: {!Crowd_question}.  Polling also
          drives the round's straggler deadline: an expired round is
          closed (decisive ballots) or re-asked (tie/absence) before the
          reply is built.  Idempotent — the underlying question is the
          session's memoised pending question, so polling never advances
          the strategy RNG. *)
  | Vote of { session : int; labeler : int; round : int; label : Jim_core.State.label }
      (** Cast labeler [labeler]'s ballot for voting round [round].
          Reply: {!Vote_ok}.  A ballot for a round that already closed
          (or a second ballot from the same labeler in one round) is
          refused softly — [counted = false] — so slow labelers resync
          by polling, not by erroring.  The ballot that completes the
          quorum closes the round: the aggregate label is absorbed into
          the engine and journaled as the session's {e only} event for
          the round, exactly as a direct {!Answer} would be. *)
  | Crowd_stats of { session : int }
      (** Ask for the session's crowd counters.  Reply: {!Crowd_info}. *)

type error =
  | Bad_request of string  (** malformed JSON, bad shape, bad arguments *)
  | Unknown_session of int  (** never existed, ended, or evicted by TTL *)
  | Unknown_strategy of string
  | Bad_source of string  (** unknown builtin / CSV that fails to parse *)
  | Unknown_instance of string
      (** a [Catalog fp] source named a fingerprint the catalog does not
          hold (never registered, or evicted) — re-register the data *)
  | Engine of Jim_core.Session.error
  | Server_busy of { active : int; max : int }
      (** the max-sessions backpressure reply *)
  | Unsupported_version of int
  | Shard_unavailable of string
      (** a router could not reach the shard holding the session and
          could not (or may not) transparently fail over — mutating
          requests are never retried after a promotion (at-most-once),
          so the client must decide; non-mutating requests are retried
          transparently and only fail when no standby exists *)
  | Unknown_labeler of int
      (** a {!Labeler_poll} or {!Vote} named a labeler id the session
          never attached (or the session was recovered — labeler
          registrations are in-memory, not journaled: re-attach) *)

type catalog_stats = {
  entries : int;  (** instances currently cataloged *)
  bytes : int;  (** canonical-CSV bytes those entries pin *)
  pinned : int;  (** live session references across all entries *)
  hits : int;  (** resolves served off an existing entry *)
  misses : int;  (** resolves that had to intern a new entry *)
  evictions : int;  (** refcount-zero entries dropped by the LRU cap *)
  fingerprints : int;  (** canonical-CSV fingerprint computations *)
  derivations : int;
      (** full instance derivations (sigclass grouping + round-0
          statuses); [misses >= derivations]: a new source naming
          already-cataloged data fingerprints but does not re-derive *)
}

type crowd_stats = {
  labelers : int;  (** labelers currently attached *)
  votes : int;  (** quorum size [K] — ballots that close a round *)
  weighted : bool;  (** accuracy-weighted aggregation enabled? *)
  rounds : int;  (** voting rounds closed with an absorbed aggregate *)
  paid_labels : int;  (** ballots counted across all closed rounds *)
  majority_flips : int;
      (** closed rounds where the aggregate overruled at least one
          dissenting ballot *)
  timeouts : int;
      (** rounds closed at the straggler deadline with fewer than [K]
          (but decisively unbalanced) ballots *)
  re_asks : int;
      (** rounds re-opened — deadline expiry on a tie, or the engine
          rejecting the aggregate as contradictory — discarding their
          ballots *)
}

type shard_status = {
  shard : string;  (** ring member name *)
  promoted : bool;  (** serving on a promoted standby (failed over)? *)
  lag : (int * int) option;
      (** replication lag as [(records, bytes)] not yet acknowledged by
          the shard's standby; [None] when the shard reported no lag
          information (no standby attached, or an older server) *)
}

type session_stats = {
  labeled : int;
  auto_determined : int;
  still_informative : int;
  total : int;
  version_space : float;
  scoring : Jim_core.Metrics.snapshot;
      (** this session's own scorer counters (per-request
          {!Jim_core.Metrics.diff}s, not the process-wide totals) *)
}

type response =
  | Started of {
      session : int;
      arity : int;
      classes : int;
      tuples : int;
      strategy : string;  (** canonical name, echoed back *)
    }
  | Question of question option  (** [None] iff the session is finished *)
  | Questions of question list
  | Answered of {
      finished : bool;
      asked : int;
      decided_classes : int;
      decided_tuples : int;
    }
  | Undone of { asked : int }
  | Explanation of { cls : int; status : Jim_core.State.status; text : string }
  | Outcome of Jim_core.Session.outcome  (** reply to {!Result} *)
  | Session_stats of session_stats  (** reply to {!Stats} *)
  | Transcript_text of { text : string }
      (** reply to {!Get_transcript}: [Jim_core.Transcript.to_string]
          output for the live engine *)
  | Registered of {
      fingerprint : string;
      arity : int;
      classes : int;
      tuples : int;
    }
      (** reply to {!Register_instance}: the catalog handle.  Pass the
          fingerprint as [Start_session]'s [Catalog] source. *)
  | Catalog_info of catalog_stats  (** reply to {!Catalog_stats} *)
  | Repl_ok of { gen : int; records : int }
      (** reply to the [Repl_*] controls: the standby's durable
          position — generation [gen] holds [records] group-committed
          journal records.  Also the ack for each streamed record; the
          primary acks its client only after {e both} its local group
          commit and this reply.  For a {!Repl_batch} the position is
          the batch's high-water mark — every record in the batch is
          durable. *)
  | Repl_lag of { records : int; bytes : int }
      (** reply to {!Repl_status} from a replicating {e primary}: how
          many records (and their encoded bytes) it has accepted but its
          standby has not yet acknowledged *)
  | Promoted of { sessions : int; generation : int }
      (** reply to {!Promote}: recovery replayed [sessions] live
          sessions from generation [generation] and the node now serves
          the full v1 protocol *)
  | Ring_info of { shards : shard_status list; sessions : int }
      (** reply to {!Ring_status}: ring members with failover state and
          per-shard replication lag (see {!shard_status}) plus the
          number of sessions with a journaled placement *)
  | Labeler_attached of { labeler : int; votes : int }
      (** reply to {!Labeler_attach}: this labeler's id (unique within
          the session) and the quorum size — poll, answer, repeat *)
  | Crowd_question of { round : int; question : question option }
      (** reply to {!Labeler_poll}: the current voting round and the
          question under vote.  [question = None] iff the session is
          finished — the labeler can detach.  Echo [round] back in the
          {!Vote}; a reply observed after the round closed simply fails
          the echo check and the ballot is not counted. *)
  | Vote_ok of { round : int; counted : bool; outcome : Jim_core.State.label option }
      (** reply to {!Vote}.  [round] is the session's {e current} round
          after processing — a resync hint.  [counted] says whether the
          ballot entered the tally (false: stale round or duplicate).
          [outcome] is [Some label] exactly when this ballot closed the
          round and [label] was absorbed and journaled. *)
  | Crowd_info of crowd_stats  (** reply to {!Crowd_stats} *)
  | Ended
  | Failed of error

val version : int
(** Protocol version, [1].  Carried as the ["jim"] field of every
    message; a mismatch decodes to {!Unsupported_version}. *)

val error_to_string : error -> string
(** One-line rendering of an {!error}.  The strings are stable — scripts
    and tests may match on them — and are, per constructor:
    - [Bad_request m] → ["bad request: <m>"]
    - [Unknown_session id] → ["unknown session <id>"]
    - [Unknown_strategy m] → [m] (already a full sentence listing the
      known strategy names)
    - [Bad_source m] → ["bad instance source: <m>"]
    - [Unknown_instance fp] → ["unknown instance <fp>"]
    - [Engine e] → [Jim_core.Session.error_to_string e]
    - [Server_busy {active; max}] →
      ["server busy: <active>/<max> sessions active"]
    - [Unsupported_version v] →
      ["unsupported protocol version <v> (this server speaks <version>)"]
    - [Shard_unavailable m] → ["shard unavailable: <m>"]
    - [Unknown_labeler id] → ["unknown labeler <id>"] *)

(** {1 Codec}

    [*_of_string] parses, checks the version and decodes; every failure
    is a typed {!error} so servers can serialise it straight back. *)

val request_to_json : request -> Json.t
val request_of_json : Json.t -> (request, error) result
val request_to_string : request -> string
val request_of_string : string -> (request, error) result

val response_to_json : response -> Json.t
val response_of_json : Json.t -> (response, error) result
val response_to_string : response -> string
val response_of_string : string -> (response, error) result

(** {1 Stable sub-encodings} (exposed for tests and other tooling) *)

val label_to_json : Jim_core.State.label -> Json.t
val label_of_json : Json.t -> (Jim_core.State.label, string) result
val source_to_json : instance_source -> Json.t
val source_of_json : Json.t -> (instance_source, string) result
val partition_to_json : Jim_partition.Partition.t -> Json.t
val partition_of_json : Json.t -> (Jim_partition.Partition.t, string) result
val outcome_to_json : Jim_core.Session.outcome -> Json.t
val outcome_of_json : Json.t -> (Jim_core.Session.outcome, string) result
val metrics_to_json : Jim_core.Metrics.snapshot -> Json.t
val metrics_of_json : Json.t -> (Jim_core.Metrics.snapshot, string) result
