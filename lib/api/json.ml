type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  (* %.17g round-trips every finite double; force a fraction so the
     parser reads the literal back as a float, not an int. *)
  let s = Printf.sprintf "%.17g" f in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
  else s ^ ".0"

let rec add buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_nan f then Buffer.add_string buf "\"NaN\""
    else if f = Float.infinity then Buffer.add_string buf "\"Infinity\""
    else if f = Float.neg_infinity then Buffer.add_string buf "\"-Infinity\""
    else Buffer.add_string buf (float_repr f)
  | String s -> add_escaped buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        add buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        add_escaped buf k;
        Buffer.add_char buf ':';
        add buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  add buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)

exception Bad of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  (* \uXXXX escapes: decode to UTF-8, pairing surrogates when both halves
     are present. *)
  let add_utf8 buf code =
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else if code < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  (* Decode the digits by hand: [int_of_string "0x..."] accepts OCaml's
     underscore-and-sign liberties, so "\u0_41" or "\u+041" would slip
     through a parser built on it.  JSON allows exactly [0-9a-fA-F]. *)
  let hex_digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail (Printf.sprintf "bad \\u escape: %C is not a hex digit" c)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let c =
      (hex_digit s.[!pos] lsl 12)
      lor (hex_digit s.[!pos + 1] lsl 8)
      lor (hex_digit s.[!pos + 2] lsl 4)
      lor hex_digit s.[!pos + 3]
    in
    pos := !pos + 4;
    c
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (if !pos >= n then fail "unterminated escape"
         else
           match s.[!pos] with
           | '"' -> advance (); Buffer.add_char buf '"'
           | '\\' -> advance (); Buffer.add_char buf '\\'
           | '/' -> advance (); Buffer.add_char buf '/'
           | 'n' -> advance (); Buffer.add_char buf '\n'
           | 't' -> advance (); Buffer.add_char buf '\t'
           | 'r' -> advance (); Buffer.add_char buf '\r'
           | 'b' -> advance (); Buffer.add_char buf '\b'
           | 'f' -> advance (); Buffer.add_char buf '\012'
           | 'u' ->
             advance ();
             let c = hex4 () in
             if c >= 0xD800 && c <= 0xDBFF
                && !pos + 1 < n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
             then begin
               pos := !pos + 2;
               let lo = hex4 () in
               if lo >= 0xDC00 && lo <= 0xDFFF then
                 add_utf8 buf
                   (0x10000 + ((c - 0xD800) lsl 10) + (lo - 0xDC00))
               else begin
                 add_utf8 buf c;
                 add_utf8 buf lo
               end
             end
             else add_utf8 buf c
           | c -> fail (Printf.sprintf "bad escape \\%c" c));
        go ()
      | c ->
        advance ();
        Buffer.add_char buf c;
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    let is_float =
      String.exists (fun c -> c = '.' || c = 'e' || c = 'E') lit
    in
    if is_float then
      match float_of_string_opt lit with
      | Some f -> Float f
      | None -> fail ("bad number " ^ lit)
    else (
      match int_of_string_opt lit with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt lit with
        | Some f -> Float f (* integer literal overflowing int *)
        | None -> fail ("bad number " ^ lit)))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        items []
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else
        let pair () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let rec fields acc =
          let kv = pair () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields (kv :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev (kv :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        fields []
    | Some c when c = '-' || ('0' <= c && c <= '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage after the value";
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) ->
    Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let field k v =
  match member k v with
  | Some x -> Ok x
  | None -> Error (Printf.sprintf "missing field %S" k)

let as_int = function
  | Int i -> Ok i
  | v -> Error ("expected an integer, got " ^ to_string v)

let as_float = function
  | Float f -> Ok f
  | Int i -> Ok (float_of_int i)
  | String "NaN" -> Ok Float.nan
  | String "Infinity" -> Ok Float.infinity
  | String "-Infinity" -> Ok Float.neg_infinity
  | v -> Error ("expected a number, got " ^ to_string v)

let as_bool = function
  | Bool b -> Ok b
  | v -> Error ("expected a boolean, got " ^ to_string v)

let as_string = function
  | String s -> Ok s
  | v -> Error ("expected a string, got " ^ to_string v)

let as_list = function
  | List xs -> Ok xs
  | v -> Error ("expected an array, got " ^ to_string v)
