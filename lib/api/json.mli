(** The wire protocol's JSON: a minimal, dependency-free value type with
    a printer and a recursive-descent parser.  Hand-rolled on purpose —
    the container ships no JSON library and the protocol needs only this
    much.

    Numbers: the parser produces {!Int} when the literal has no fraction
    or exponent (falling back to {!Float} on overflow), {!Float}
    otherwise.  The printer renders non-finite floats as the strings
    ["NaN"], ["Infinity"], ["-Infinity"] (JSON has no literal for them);
    {!as_float} accepts those strings back, so float round-trips hold for
    every value the engine produces (version-space counts saturate to
    [infinity] on wide instances). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact one-line rendering (no newlines — safe for the
    line-delimited wire). *)

val of_string : string -> (t, string) result
(** Parse one JSON value; the error names the offending byte offset.
    Trailing garbage after the value is an error. *)

(** {1 Accessors} — shape checks used by the protocol codec; every error
    is a human-readable "expected X" message. *)

val member : string -> t -> t option
(** Field lookup in an {!Obj}; [None] for missing fields or non-objects. *)

val field : string -> t -> (t, string) result
(** Like {!member} but missing fields are an [Error]. *)

val as_int : t -> (int, string) result
val as_float : t -> (float, string) result
(** Accepts {!Float}, {!Int}, and the non-finite strings of the printer. *)

val as_bool : t -> (bool, string) result
val as_string : t -> (string, string) result
val as_list : t -> (t list, string) result
