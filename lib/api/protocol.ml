module Partition = Jim_partition.Partition
open Jim_core

let version = 1

type instance_source =
  | Builtin of string
  | Synthetic of {
      n_attrs : int;
      n_tuples : int;
      domain : int;
      goal_rank : int;
      seed : int;
    }
  | Csv_inline of string
  | Catalog of string

type question = { cls : int; row : int; sg : Partition.t }

type request =
  | Start_session of { source : instance_source; strategy : string; seed : int }
  | Get_question of { session : int }
  | Top_questions of { session : int; k : int }
  | Answer of { session : int; cls : int; label : State.label }
  | Undo of { session : int }
  | Explain of { session : int; cls : int }
  | Result of { session : int }
  | Stats of { session : int }
  | Get_transcript of { session : int }
  | End_session of { session : int }
  | Register_instance of { source : instance_source }
  | Catalog_stats
  | Start_pinned of {
      session : int;
      source : instance_source;
      strategy : string;
      seed : int;
    }
  | Repl_install of { gen : int; snapshot : string option }
  | Repl_rotate of { gen : int }
  | Repl_batch of { records : string list }
  | Repl_status
  | Promote
  | Ring_status
  | Labeler_attach of { session : int }
  | Labeler_poll of { session : int; labeler : int }
  | Vote of { session : int; labeler : int; round : int; label : State.label }
  | Crowd_stats of { session : int }

type error =
  | Bad_request of string
  | Unknown_session of int
  | Unknown_strategy of string
  | Bad_source of string
  | Unknown_instance of string
  | Engine of Session.error
  | Server_busy of { active : int; max : int }
  | Unsupported_version of int
  | Shard_unavailable of string
  | Unknown_labeler of int

type crowd_stats = {
  labelers : int;
  votes : int;  (* quorum size K *)
  weighted : bool;
  rounds : int;  (* closed rounds = aggregates journaled *)
  paid_labels : int;
  majority_flips : int;
  timeouts : int;
  re_asks : int;
}

type catalog_stats = {
  entries : int;
  bytes : int;
  pinned : int;
  hits : int;
  misses : int;
  evictions : int;
  fingerprints : int;
  derivations : int;
}

type shard_status = {
  shard : string;
  promoted : bool;
  lag : (int * int) option;  (* replication lag: (records, bytes) *)
}

type session_stats = {
  labeled : int;
  auto_determined : int;
  still_informative : int;
  total : int;
  version_space : float;
  scoring : Metrics.snapshot;
}

type response =
  | Started of {
      session : int;
      arity : int;
      classes : int;
      tuples : int;
      strategy : string;
    }
  | Question of question option
  | Questions of question list
  | Answered of {
      finished : bool;
      asked : int;
      decided_classes : int;
      decided_tuples : int;
    }
  | Undone of { asked : int }
  | Explanation of { cls : int; status : State.status; text : string }
  | Outcome of Session.outcome
  | Session_stats of session_stats
  | Transcript_text of { text : string }
  | Registered of {
      fingerprint : string;
      arity : int;
      classes : int;
      tuples : int;
    }
  | Catalog_info of catalog_stats
  | Repl_ok of { gen : int; records : int }
  | Repl_lag of { records : int; bytes : int }
  | Promoted of { sessions : int; generation : int }
  | Ring_info of { shards : shard_status list; sessions : int }
  | Labeler_attached of { labeler : int; votes : int }
  | Crowd_question of { round : int; question : question option }
  | Vote_ok of { round : int; counted : bool; outcome : State.label option }
  | Crowd_info of crowd_stats
  | Ended
  | Failed of error

let error_to_string = function
  | Bad_request m -> "bad request: " ^ m
  | Unknown_session id -> Printf.sprintf "unknown session %d" id
  | Unknown_strategy m -> m
  | Bad_source m -> "bad instance source: " ^ m
  | Unknown_instance fp -> Printf.sprintf "unknown instance %s" fp
  | Engine e -> Session.error_to_string e
  | Server_busy { active; max } ->
    Printf.sprintf "server busy: %d/%d sessions active" active max
  | Unsupported_version v ->
    Printf.sprintf "unsupported protocol version %d (this server speaks %d)" v
      version
  | Shard_unavailable m -> "shard unavailable: " ^ m
  | Unknown_labeler id -> Printf.sprintf "unknown labeler %d" id

let ( let* ) = Result.bind

(* ------------------------------------------------------------------ *)
(* Stable sub-encodings                                                *)

let label_to_json = function
  | State.Pos -> Json.String "+"
  | State.Neg -> Json.String "-"

let label_of_json = function
  | Json.String "+" -> Ok State.Pos
  | Json.String "-" -> Ok State.Neg
  | v -> Error ("expected a label \"+\" or \"-\", got " ^ Json.to_string v)

let status_to_json = function
  | State.Certain_pos -> Json.String "+"
  | State.Certain_neg -> Json.String "-"
  | State.Informative -> Json.String "?"

let status_of_json = function
  | Json.String "+" -> Ok State.Certain_pos
  | Json.String "-" -> Ok State.Certain_neg
  | Json.String "?" -> Ok State.Informative
  | v -> Error ("expected a status \"+\", \"-\" or \"?\", got " ^ Json.to_string v)

let partition_to_json p = Json.String (Partition.to_string p)

let partition_of_json v =
  let* s = Json.as_string v in
  Partition.of_string s

let int_field k v =
  let* f = Json.field k v in
  Json.as_int f

let string_field k v =
  let* f = Json.field k v in
  Json.as_string f

let metrics_to_json (m : Metrics.snapshot) =
  Json.Obj
    [
      ("meets", Json.Int m.meets);
      ("classify_calls", Json.Int m.classify_calls);
      ("cache_hits", Json.Int m.cache_hits);
      ("cache_misses", Json.Int m.cache_misses);
      ("picks", Json.Int m.picks);
      ("pick_time_ns", Json.Int m.pick_time_ns);
      ("last_pick_ns", Json.Int m.last_pick_ns);
    ]

let metrics_of_json v =
  let* meets = int_field "meets" v in
  let* classify_calls = int_field "classify_calls" v in
  let* cache_hits = int_field "cache_hits" v in
  let* cache_misses = int_field "cache_misses" v in
  let* picks = int_field "picks" v in
  let* pick_time_ns = int_field "pick_time_ns" v in
  let* last_pick_ns = int_field "last_pick_ns" v in
  Ok
    {
      Metrics.meets;
      classify_calls;
      cache_hits;
      cache_misses;
      picks;
      pick_time_ns;
      last_pick_ns;
    }

let event_to_json (e : Session.event) =
  Json.Obj
    [
      ("step", Json.Int e.step);
      ("cls", Json.Int e.cls);
      ("row", Json.Int e.row);
      ("sg", partition_to_json e.sg);
      ("label", label_to_json e.label);
      ("decided_after", Json.Int e.decided_after);
      ("tuples_decided_after", Json.Int e.tuples_decided_after);
      ("vs_after", Json.Float e.vs_after);
    ]

let event_of_json v =
  let* step = int_field "step" v in
  let* cls = int_field "cls" v in
  let* row = int_field "row" v in
  let* sg = Result.bind (Json.field "sg" v) partition_of_json in
  let* label = Result.bind (Json.field "label" v) label_of_json in
  let* decided_after = int_field "decided_after" v in
  let* tuples_decided_after = int_field "tuples_decided_after" v in
  let* vs_after = Result.bind (Json.field "vs_after" v) Json.as_float in
  Ok
    {
      Session.step;
      cls;
      row;
      sg;
      label;
      decided_after;
      tuples_decided_after;
      vs_after;
    }

let outcome_to_json (o : Session.outcome) =
  Json.Obj
    [
      ("query", partition_to_json o.query);
      ("interactions", Json.Int o.interactions);
      ("contradiction", Json.Bool o.contradiction);
      ("events", Json.List (List.map event_to_json o.events));
    ]

let outcome_of_json v =
  let* query = Result.bind (Json.field "query" v) partition_of_json in
  let* interactions = int_field "interactions" v in
  let* contradiction = Result.bind (Json.field "contradiction" v) Json.as_bool in
  let* events = Result.bind (Json.field "events" v) Json.as_list in
  let* events =
    List.fold_left
      (fun acc e ->
        let* acc = acc in
        let* e = event_of_json e in
        Ok (e :: acc))
      (Ok []) events
  in
  Ok { Session.query; interactions; contradiction; events = List.rev events }

let source_to_json = function
  | Builtin name ->
    Json.Obj [ ("kind", Json.String "builtin"); ("name", Json.String name) ]
  | Synthetic { n_attrs; n_tuples; domain; goal_rank; seed } ->
    Json.Obj
      [
        ("kind", Json.String "synthetic");
        ("n_attrs", Json.Int n_attrs);
        ("n_tuples", Json.Int n_tuples);
        ("domain", Json.Int domain);
        ("goal_rank", Json.Int goal_rank);
        ("seed", Json.Int seed);
      ]
  | Csv_inline text ->
    Json.Obj [ ("kind", Json.String "csv"); ("text", Json.String text) ]
  | Catalog fingerprint ->
    Json.Obj
      [
        ("kind", Json.String "catalog");
        ("fingerprint", Json.String fingerprint);
      ]

let source_of_json v =
  let* kind = string_field "kind" v in
  match kind with
  | "builtin" ->
    let* name = string_field "name" v in
    Ok (Builtin name)
  | "synthetic" ->
    let* n_attrs = int_field "n_attrs" v in
    let* n_tuples = int_field "n_tuples" v in
    let* domain = int_field "domain" v in
    let* goal_rank = int_field "goal_rank" v in
    let* seed = int_field "seed" v in
    Ok (Synthetic { n_attrs; n_tuples; domain; goal_rank; seed })
  | "csv" ->
    let* text = string_field "text" v in
    Ok (Csv_inline text)
  | "catalog" ->
    let* fingerprint = string_field "fingerprint" v in
    Ok (Catalog fingerprint)
  | k -> Error (Printf.sprintf "unknown instance source kind %S" k)

let question_to_json q =
  Json.Obj
    [
      ("cls", Json.Int q.cls);
      ("row", Json.Int q.row);
      ("sg", partition_to_json q.sg);
    ]

let question_of_json v =
  let* cls = int_field "cls" v in
  let* row = int_field "row" v in
  let* sg = Result.bind (Json.field "sg" v) partition_of_json in
  Ok { cls; row; sg }

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)

let envelope tag_key tag fields =
  Json.Obj ((("jim", Json.Int version) :: (tag_key, Json.String tag) :: fields))

(* Six requests carry nothing but the session id; their encoders and
   decoders are the same shape, factored here once (the tag is the only
   difference).  [session_only_tags] is the single list both directions
   share, so adding such a request is one line. *)
let session_only_tags : (string * (int -> request)) list =
  [
    ("get_question", fun session -> Get_question { session });
    ("undo", fun session -> Undo { session });
    ("result", fun session -> Result { session });
    ("stats", fun session -> Stats { session });
    ("get_transcript", fun session -> Get_transcript { session });
    ("end_session", fun session -> End_session { session });
    ("labeler_attach", fun session -> Labeler_attach { session });
    ("crowd_stats", fun session -> Crowd_stats { session });
  ]

let session_req tag session = envelope "req" tag [ ("session", Json.Int session) ]

let request_to_json = function
  | Start_session { source; strategy; seed } ->
    envelope "req" "start_session"
      [
        ("source", source_to_json source);
        ("strategy", Json.String strategy);
        ("seed", Json.Int seed);
      ]
  | Get_question { session } -> session_req "get_question" session
  | Top_questions { session; k } ->
    envelope "req" "top_questions"
      [ ("session", Json.Int session); ("k", Json.Int k) ]
  | Answer { session; cls; label } ->
    envelope "req" "answer"
      [
        ("session", Json.Int session);
        ("cls", Json.Int cls);
        ("label", label_to_json label);
      ]
  | Undo { session } -> session_req "undo" session
  | Explain { session; cls } ->
    envelope "req" "explain"
      [ ("session", Json.Int session); ("cls", Json.Int cls) ]
  | Result { session } -> session_req "result" session
  | Stats { session } -> session_req "stats" session
  | Get_transcript { session } -> session_req "get_transcript" session
  | End_session { session } -> session_req "end_session" session
  | Register_instance { source } ->
    envelope "req" "register_instance" [ ("source", source_to_json source) ]
  | Catalog_stats -> envelope "req" "catalog_stats" []
  | Start_pinned { session; source; strategy; seed } ->
    envelope "req" "start_pinned"
      [
        ("session", Json.Int session);
        ("source", source_to_json source);
        ("strategy", Json.String strategy);
        ("seed", Json.Int seed);
      ]
  | Repl_install { gen; snapshot } ->
    envelope "req" "repl_install"
      [
        ("gen", Json.Int gen);
        ( "snapshot",
          match snapshot with None -> Json.Null | Some s -> Json.String s );
      ]
  | Repl_rotate { gen } -> envelope "req" "repl_rotate" [ ("gen", Json.Int gen) ]
  | Repl_batch { records } ->
    envelope "req" "repl_batch"
      [ ("records", Json.List (List.map (fun r -> Json.String r) records)) ]
  | Repl_status -> envelope "req" "repl_status" []
  | Promote -> envelope "req" "promote" []
  | Ring_status -> envelope "req" "ring_status" []
  | Labeler_attach { session } -> session_req "labeler_attach" session
  | Labeler_poll { session; labeler } ->
    envelope "req" "labeler_poll"
      [ ("session", Json.Int session); ("labeler", Json.Int labeler) ]
  | Vote { session; labeler; round; label } ->
    envelope "req" "vote"
      [
        ("session", Json.Int session);
        ("labeler", Json.Int labeler);
        ("round", Json.Int round);
        ("label", label_to_json label);
      ]
  | Crowd_stats { session } -> session_req "crowd_stats" session

let check_version v k =
  match int_field "jim" v with
  | Error e -> Error (Bad_request e)
  | Ok ver when ver <> version -> Error (Unsupported_version ver)
  | Ok _ -> k ()

let bad = function Ok x -> Ok x | Error m -> Error (Bad_request m)

let request_of_json v =
  check_version v @@ fun () ->
  let* tag = bad (string_field "req" v) in
  let session () = bad (int_field "session" v) in
  match List.assoc_opt tag session_only_tags with
  | Some make ->
    let* session = session () in
    Ok (make session)
  | None -> (
    match tag with
    | "start_session" ->
      bad
        (let* source = Result.bind (Json.field "source" v) source_of_json in
         let* strategy = string_field "strategy" v in
         let* seed = int_field "seed" v in
         Ok (Start_session { source; strategy; seed }))
    | "top_questions" ->
      let* session = session () in
      let* k = bad (int_field "k" v) in
      Ok (Top_questions { session; k })
    | "answer" ->
      let* session = session () in
      bad
        (let* cls = int_field "cls" v in
         let* label = Result.bind (Json.field "label" v) label_of_json in
         Ok (Answer { session; cls; label }))
    | "explain" ->
      let* session = session () in
      let* cls = bad (int_field "cls" v) in
      Ok (Explain { session; cls })
    | "register_instance" ->
      bad
        (let* source = Result.bind (Json.field "source" v) source_of_json in
         Ok (Register_instance { source }))
    | "catalog_stats" -> Ok Catalog_stats
    | "start_pinned" ->
      let* session = session () in
      bad
        (let* source = Result.bind (Json.field "source" v) source_of_json in
         let* strategy = string_field "strategy" v in
         let* seed = int_field "seed" v in
         Ok (Start_pinned { session; source; strategy; seed }))
    | "repl_install" ->
      bad
        (let* gen = int_field "gen" v in
         let* snapshot =
           match Json.member "snapshot" v with
           | None | Some Json.Null -> Ok None
           | Some s ->
             let* s = Json.as_string s in
             Ok (Some s)
         in
         Ok (Repl_install { gen; snapshot }))
    | "repl_rotate" ->
      let* gen = bad (int_field "gen" v) in
      Ok (Repl_rotate { gen })
    | "repl_batch" ->
      bad
        (let* records = Result.bind (Json.field "records" v) Json.as_list in
         let* records =
           List.fold_left
             (fun acc r ->
               let* acc = acc in
               let* r = Json.as_string r in
               Ok (r :: acc))
             (Ok []) records
         in
         Ok (Repl_batch { records = List.rev records }))
    | "repl_status" -> Ok Repl_status
    | "promote" -> Ok Promote
    | "ring_status" -> Ok Ring_status
    | "labeler_poll" ->
      let* session = session () in
      let* labeler = bad (int_field "labeler" v) in
      Ok (Labeler_poll { session; labeler })
    | "vote" ->
      let* session = session () in
      bad
        (let* labeler = int_field "labeler" v in
         let* round = int_field "round" v in
         let* label = Result.bind (Json.field "label" v) label_of_json in
         Ok (Vote { session; labeler; round; label }))
    | tag -> Error (Bad_request (Printf.sprintf "unknown request %S" tag)))

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)

let session_error_to_json = function
  | Session.Contradiction -> Json.String "contradiction"
  | Session.Nothing_to_undo -> Json.String "nothing_to_undo"

let session_error_of_json = function
  | Json.String "contradiction" -> Ok Session.Contradiction
  | Json.String "nothing_to_undo" -> Ok Session.Nothing_to_undo
  | v -> Error ("unknown engine error " ^ Json.to_string v)

let error_to_json e =
  let fields =
    match e with
    | Bad_request m -> [ ("kind", Json.String "bad_request"); ("message", Json.String m) ]
    | Unknown_session id ->
      [ ("kind", Json.String "unknown_session"); ("session", Json.Int id) ]
    | Unknown_strategy m ->
      [ ("kind", Json.String "unknown_strategy"); ("message", Json.String m) ]
    | Bad_source m ->
      [ ("kind", Json.String "bad_source"); ("message", Json.String m) ]
    | Unknown_instance fp ->
      [
        ("kind", Json.String "unknown_instance");
        ("fingerprint", Json.String fp);
      ]
    | Engine err ->
      [
        ("kind", Json.String "engine");
        ("error", session_error_to_json err);
        ("message", Json.String (Session.error_to_string err));
      ]
    | Server_busy { active; max } ->
      [
        ("kind", Json.String "server_busy");
        ("active", Json.Int active);
        ("max", Json.Int max);
      ]
    | Unsupported_version v ->
      [ ("kind", Json.String "unsupported_version"); ("version", Json.Int v) ]
    | Shard_unavailable m ->
      [ ("kind", Json.String "shard_unavailable"); ("message", Json.String m) ]
    | Unknown_labeler id ->
      [ ("kind", Json.String "unknown_labeler"); ("labeler", Json.Int id) ]
  in
  Json.Obj fields

let error_of_json v =
  let* kind = string_field "kind" v in
  match kind with
  | "bad_request" ->
    let* m = string_field "message" v in
    Ok (Bad_request m)
  | "unknown_session" ->
    let* id = int_field "session" v in
    Ok (Unknown_session id)
  | "unknown_strategy" ->
    let* m = string_field "message" v in
    Ok (Unknown_strategy m)
  | "bad_source" ->
    let* m = string_field "message" v in
    Ok (Bad_source m)
  | "unknown_instance" ->
    let* fp = string_field "fingerprint" v in
    Ok (Unknown_instance fp)
  | "engine" ->
    let* err = Result.bind (Json.field "error" v) session_error_of_json in
    Ok (Engine err)
  | "server_busy" ->
    let* active = int_field "active" v in
    let* max = int_field "max" v in
    Ok (Server_busy { active; max })
  | "unsupported_version" ->
    let* ver = int_field "version" v in
    Ok (Unsupported_version ver)
  | "shard_unavailable" ->
    let* m = string_field "message" v in
    Ok (Shard_unavailable m)
  | "unknown_labeler" ->
    let* id = int_field "labeler" v in
    Ok (Unknown_labeler id)
  | k -> Error (Printf.sprintf "unknown error kind %S" k)

let response_to_json = function
  | Started { session; arity; classes; tuples; strategy } ->
    envelope "resp" "started"
      [
        ("session", Json.Int session);
        ("arity", Json.Int arity);
        ("classes", Json.Int classes);
        ("tuples", Json.Int tuples);
        ("strategy", Json.String strategy);
      ]
  | Question q ->
    envelope "resp" "question"
      [
        ( "question",
          match q with None -> Json.Null | Some q -> question_to_json q );
      ]
  | Questions qs ->
    envelope "resp" "questions"
      [ ("questions", Json.List (List.map question_to_json qs)) ]
  | Answered { finished; asked; decided_classes; decided_tuples } ->
    envelope "resp" "answered"
      [
        ("finished", Json.Bool finished);
        ("asked", Json.Int asked);
        ("decided_classes", Json.Int decided_classes);
        ("decided_tuples", Json.Int decided_tuples);
      ]
  | Undone { asked } -> envelope "resp" "undone" [ ("asked", Json.Int asked) ]
  | Explanation { cls; status; text } ->
    envelope "resp" "explanation"
      [
        ("cls", Json.Int cls);
        ("status", status_to_json status);
        ("text", Json.String text);
      ]
  | Outcome o -> envelope "resp" "outcome" [ ("outcome", outcome_to_json o) ]
  | Session_stats s ->
    envelope "resp" "stats"
      [
        ("labeled", Json.Int s.labeled);
        ("auto_determined", Json.Int s.auto_determined);
        ("still_informative", Json.Int s.still_informative);
        ("total", Json.Int s.total);
        ("version_space", Json.Float s.version_space);
        ("scoring", metrics_to_json s.scoring);
      ]
  | Transcript_text { text } ->
    envelope "resp" "transcript" [ ("text", Json.String text) ]
  | Registered { fingerprint; arity; classes; tuples } ->
    envelope "resp" "registered"
      [
        ("fingerprint", Json.String fingerprint);
        ("arity", Json.Int arity);
        ("classes", Json.Int classes);
        ("tuples", Json.Int tuples);
      ]
  | Catalog_info c ->
    envelope "resp" "catalog_stats"
      [
        ("entries", Json.Int c.entries);
        ("bytes", Json.Int c.bytes);
        ("pinned", Json.Int c.pinned);
        ("hits", Json.Int c.hits);
        ("misses", Json.Int c.misses);
        ("evictions", Json.Int c.evictions);
        ("fingerprints", Json.Int c.fingerprints);
        ("derivations", Json.Int c.derivations);
      ]
  | Repl_ok { gen; records } ->
    envelope "resp" "repl_ok"
      [ ("gen", Json.Int gen); ("records", Json.Int records) ]
  | Repl_lag { records; bytes } ->
    envelope "resp" "repl_lag"
      [ ("records", Json.Int records); ("bytes", Json.Int bytes) ]
  | Promoted { sessions; generation } ->
    envelope "resp" "promoted"
      [ ("sessions", Json.Int sessions); ("generation", Json.Int generation) ]
  | Ring_info { shards; sessions } ->
    envelope "resp" "ring_status"
      [
        ( "shards",
          Json.List
            (List.map
               (fun { shard; promoted; lag } ->
                 Json.Obj
                   (("name", Json.String shard)
                   :: ("promoted", Json.Bool promoted)
                   ::
                   (match lag with
                   | None -> []
                   | Some (records, bytes) ->
                     [
                       ("lag_records", Json.Int records);
                       ("lag_bytes", Json.Int bytes);
                     ])))
               shards) );
        ("sessions", Json.Int sessions);
      ]
  | Labeler_attached { labeler; votes } ->
    envelope "resp" "labeler_attached"
      [ ("labeler", Json.Int labeler); ("votes", Json.Int votes) ]
  | Crowd_question { round; question } ->
    envelope "resp" "crowd_question"
      [
        ("round", Json.Int round);
        ( "question",
          match question with None -> Json.Null | Some q -> question_to_json q );
      ]
  | Vote_ok { round; counted; outcome } ->
    envelope "resp" "vote_ok"
      [
        ("round", Json.Int round);
        ("counted", Json.Bool counted);
        ( "outcome",
          match outcome with None -> Json.Null | Some l -> label_to_json l );
      ]
  | Crowd_info c ->
    envelope "resp" "crowd_stats"
      [
        ("labelers", Json.Int c.labelers);
        ("votes", Json.Int c.votes);
        ("weighted", Json.Bool c.weighted);
        ("rounds", Json.Int c.rounds);
        ("paid_labels", Json.Int c.paid_labels);
        ("majority_flips", Json.Int c.majority_flips);
        ("timeouts", Json.Int c.timeouts);
        ("re_asks", Json.Int c.re_asks);
      ]
  | Ended -> envelope "resp" "ended" []
  | Failed e -> envelope "resp" "error" [ ("error", error_to_json e) ]

let response_of_json v =
  check_version v @@ fun () ->
  let* tag = bad (string_field "resp" v) in
  match tag with
  | "started" ->
    bad
      (let* session = int_field "session" v in
       let* arity = int_field "arity" v in
       let* classes = int_field "classes" v in
       let* tuples = int_field "tuples" v in
       let* strategy = string_field "strategy" v in
       Ok (Started { session; arity; classes; tuples; strategy }))
  | "question" ->
    bad
      (let* q = Json.field "question" v in
       match q with
       | Json.Null -> Ok (Question None)
       | q ->
         let* q = question_of_json q in
         Ok (Question (Some q)))
  | "questions" ->
    bad
      (let* qs = Result.bind (Json.field "questions" v) Json.as_list in
       let* qs =
         List.fold_left
           (fun acc q ->
             let* acc = acc in
             let* q = question_of_json q in
             Ok (q :: acc))
           (Ok []) qs
       in
       Ok (Questions (List.rev qs)))
  | "answered" ->
    bad
      (let* finished = Result.bind (Json.field "finished" v) Json.as_bool in
       let* asked = int_field "asked" v in
       let* decided_classes = int_field "decided_classes" v in
       let* decided_tuples = int_field "decided_tuples" v in
       Ok (Answered { finished; asked; decided_classes; decided_tuples }))
  | "undone" ->
    bad
      (let* asked = int_field "asked" v in
       Ok (Undone { asked }))
  | "explanation" ->
    bad
      (let* cls = int_field "cls" v in
       let* status = Result.bind (Json.field "status" v) status_of_json in
       let* text = string_field "text" v in
       Ok (Explanation { cls; status; text }))
  | "outcome" ->
    bad
      (let* o = Result.bind (Json.field "outcome" v) outcome_of_json in
       Ok (Outcome o))
  | "stats" ->
    bad
      (let* labeled = int_field "labeled" v in
       let* auto_determined = int_field "auto_determined" v in
       let* still_informative = int_field "still_informative" v in
       let* total = int_field "total" v in
       let* version_space =
         Result.bind (Json.field "version_space" v) Json.as_float
       in
       let* scoring = Result.bind (Json.field "scoring" v) metrics_of_json in
       Ok
         (Session_stats
            {
              labeled;
              auto_determined;
              still_informative;
              total;
              version_space;
              scoring;
            }))
  | "transcript" ->
    bad
      (let* text = string_field "text" v in
       Ok (Transcript_text { text }))
  | "registered" ->
    bad
      (let* fingerprint = string_field "fingerprint" v in
       let* arity = int_field "arity" v in
       let* classes = int_field "classes" v in
       let* tuples = int_field "tuples" v in
       Ok (Registered { fingerprint; arity; classes; tuples }))
  | "catalog_stats" ->
    bad
      (let* entries = int_field "entries" v in
       let* bytes = int_field "bytes" v in
       let* pinned = int_field "pinned" v in
       let* hits = int_field "hits" v in
       let* misses = int_field "misses" v in
       let* evictions = int_field "evictions" v in
       let* fingerprints = int_field "fingerprints" v in
       let* derivations = int_field "derivations" v in
       Ok
         (Catalog_info
            {
              entries;
              bytes;
              pinned;
              hits;
              misses;
              evictions;
              fingerprints;
              derivations;
            }))
  | "repl_ok" ->
    bad
      (let* gen = int_field "gen" v in
       let* records = int_field "records" v in
       Ok (Repl_ok { gen; records }))
  | "repl_lag" ->
    bad
      (let* records = int_field "records" v in
       let* bytes = int_field "bytes" v in
       Ok (Repl_lag { records; bytes }))
  | "promoted" ->
    bad
      (let* sessions = int_field "sessions" v in
       let* generation = int_field "generation" v in
       Ok (Promoted { sessions; generation }))
  | "ring_status" ->
    bad
      (let* shards = Result.bind (Json.field "shards" v) Json.as_list in
       let* shards =
         List.fold_left
           (fun acc s ->
             let* acc = acc in
             let* name = string_field "name" s in
             let* promoted = Result.bind (Json.field "promoted" s) Json.as_bool in
             (* Lag fields are additive: replies from shards without an
                attached standby simply omit them. *)
             let* lag =
               match (Json.member "lag_records" s, Json.member "lag_bytes" s) with
               | None, None -> Ok None
               | Some r, Some b ->
                 let* r = Json.as_int r in
                 let* b = Json.as_int b in
                 Ok (Some (r, b))
               | _ -> Error "lag_records and lag_bytes must appear together"
             in
             Ok ({ shard = name; promoted; lag } :: acc))
           (Ok []) shards
       in
       let* sessions = int_field "sessions" v in
       Ok (Ring_info { shards = List.rev shards; sessions }))
  | "labeler_attached" ->
    bad
      (let* labeler = int_field "labeler" v in
       let* votes = int_field "votes" v in
       Ok (Labeler_attached { labeler; votes }))
  | "crowd_question" ->
    bad
      (let* round = int_field "round" v in
       let* q = Json.field "question" v in
       match q with
       | Json.Null -> Ok (Crowd_question { round; question = None })
       | q ->
         let* q = question_of_json q in
         Ok (Crowd_question { round; question = Some q }))
  | "vote_ok" ->
    bad
      (let* round = int_field "round" v in
       let* counted = Result.bind (Json.field "counted" v) Json.as_bool in
       let* outcome =
         let* l = Json.field "outcome" v in
         match l with
         | Json.Null -> Ok None
         | l ->
           let* l = label_of_json l in
           Ok (Some l)
       in
       Ok (Vote_ok { round; counted; outcome }))
  | "crowd_stats" ->
    bad
      (let* labelers = int_field "labelers" v in
       let* votes = int_field "votes" v in
       let* weighted = Result.bind (Json.field "weighted" v) Json.as_bool in
       let* rounds = int_field "rounds" v in
       let* paid_labels = int_field "paid_labels" v in
       let* majority_flips = int_field "majority_flips" v in
       let* timeouts = int_field "timeouts" v in
       let* re_asks = int_field "re_asks" v in
       Ok
         (Crowd_info
            {
              labelers;
              votes;
              weighted;
              rounds;
              paid_labels;
              majority_flips;
              timeouts;
              re_asks;
            }))
  | "ended" -> Ok Ended
  | "error" ->
    bad
      (let* e = Result.bind (Json.field "error" v) error_of_json in
       Ok (Failed e))
  | tag -> Error (Bad_request (Printf.sprintf "unknown response %S" tag))

(* ------------------------------------------------------------------ *)
(* String wrappers                                                     *)

let request_to_string r = Json.to_string (request_to_json r)

let request_of_string s =
  match Json.of_string s with
  | Error m -> Error (Bad_request m)
  | Ok v -> request_of_json v

let response_to_string r = Json.to_string (response_to_json r)

let response_of_string s =
  match Json.of_string s with
  | Error m -> Error (Bad_request m)
  | Ok v -> response_of_json v
