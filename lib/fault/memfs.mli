(** A deterministic in-memory filesystem behind the store's
    {!Jim_store.Io} seam, with a page-cache model and fault injection.

    {1 The model}

    Every file holds two lengths: everything the process has written (the
    {e cache} view, which reads and appends see) and the prefix known to
    be durable (advanced to the full length by a successful [fsync]).  A
    {e power cut} freezes the filesystem — every later operation raises
    {!Power_cut}, as the process is dead — and the surviving disk is then
    one of two images:

    - {!durable_image}: every unsynced byte is gone — the adversarial
      kernel dropped the whole page cache (torn exactly at the last fsync
      barrier);
    - {!flushed_image}: the kernel happened to flush everything,
      including the partial bytes of the write the cut interrupted — a
      torn tail mid-record.

    Real crashes land anywhere between the two; a recovery correct on
    both (and on the partial-write variants a {!Plan.t}'s [crash_write]
    produces) is correct on all of them, because the store's files are
    append-only between fsync barriers.

    Metadata ([create]/[rename]/[remove]) is modelled as durable
    immediately — the metadata-journalling discipline of ext4-style
    filesystems — so [rename] is atomic and the interesting damage is
    always in file {e contents}, which is what the crash sweeps
    enumerate.  Faults ({!Plan.t}) surface as [Unix.Unix_error] (EIO,
    ENOSPC), matching the convention documented in {!Jim_store.Io}. *)

exception Power_cut
(** The plan's power cut fired; the filesystem refuses everything
    thereafter.  Build an image and recover from it. *)

type t

val create : ?plan:Plan.t -> unit -> t
(** A fresh, empty filesystem.  [plan] defaults to {!Plan.none}. *)

val io : t -> Jim_store.Io.t
(** The {!Jim_store.Io} view to hand to [Store.open_dir ~io] etc. *)

val writes : t -> int
(** Write operations attempted so far (each short-write retry counts). *)

val fsyncs : t -> int
(** File fsync operations attempted so far. *)

val bytes_accepted : t -> int
(** Total bytes accepted across all writes (the ENOSPC meter). *)

val durable_image : t -> t
(** Post-power-cut disk with every unsynced byte dropped.  The image has
    plan {!Plan.none} and fresh counters. *)

val flushed_image : t -> t
(** Post-power-cut disk with the whole cache flushed (everything written,
    including a partial final write, survived).  Plan {!Plan.none}. *)

val file : t -> string -> string option
(** Cache-view content of one file, for byte-level assertions. *)

val set_file : t -> string -> string -> unit
(** Install raw content as a durable file (tests building disk images by
    hand). *)
