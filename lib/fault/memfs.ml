module Io = Jim_store.Io

exception Power_cut

let () =
  Printexc.register_printer (function
    | Power_cut -> Some "Jim_fault.Memfs.Power_cut"
    | _ -> None)

type mf = {
  mutable data : Bytes.t;  (* capacity >= len *)
  mutable len : int;  (* cache view: everything written *)
  mutable synced : int;  (* durable prefix *)
}

type t = {
  lock : Mutex.t;
  files : (string, mf) Hashtbl.t;
  dirs : (string, unit) Hashtbl.t;
  plan : Plan.t;
  mutable writes : int;
  mutable fsyncs : int;
  mutable accepted : int;
  mutable dead : bool;
}

let create ?(plan = Plan.none) () =
  {
    lock = Mutex.create ();
    files = Hashtbl.create 8;
    dirs = Hashtbl.create 8;
    plan;
    writes = 0;
    fsyncs = 0;
    accepted = 0;
    dead = false;
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let alive t = if t.dead then raise Power_cut

let writes t = with_lock t (fun () -> t.writes)
let fsyncs t = with_lock t (fun () -> t.fsyncs)
let bytes_accepted t = with_lock t (fun () -> t.accepted)

let content mf = Bytes.sub_string mf.data 0 mf.len

let file t path =
  with_lock t (fun () ->
      Option.map content (Hashtbl.find_opt t.files path))

let fresh_mf () = { data = Bytes.create 256; len = 0; synced = 0 }

let set_file t path data =
  with_lock t (fun () ->
      let n = String.length data in
      Hashtbl.replace t.files path
        { data = Bytes.of_string data; len = n; synced = n })

let ensure_capacity mf extra =
  let need = mf.len + extra in
  if Bytes.length mf.data < need then begin
    let cap = max need (2 * Bytes.length mf.data) in
    let data = Bytes.create cap in
    Bytes.blit mf.data 0 data 0 mf.len;
    mf.data <- data
  end

let append_bytes mf buf off n =
  ensure_capacity mf n;
  Bytes.blit buf off mf.data mf.len n;
  mf.len <- mf.len + n

let eio op path = Unix.Unix_error (Unix.EIO, op, path)

(* One write operation against [mf], under the plan.  Returns the number
   of bytes accepted (the caller loops, exactly like over a real fd). *)
let do_write t path mf buf off len =
  alive t;
  if len <= 0 then 0
  else begin
    t.writes <- t.writes + 1;
    let n = t.writes in
    (match t.plan.Plan.crash_write with
    | Some (nth, applied) when n = nth ->
      append_bytes mf buf off (min applied len);
      t.dead <- true;
      raise Power_cut
    | _ -> ());
    (match t.plan.Plan.fail_write with
    | Some nth when n = nth -> raise (eio "write" path)
    | _ -> ());
    let budget =
      match t.plan.Plan.enospc_after with
      | None -> len
      | Some b ->
        if t.accepted >= b then raise (Unix.Unix_error (Unix.ENOSPC, "write", path))
        else min len (b - t.accepted)
    in
    let cap =
      match t.plan.Plan.short_write with
      | Some (nth, k) when n = nth -> min budget k
      | _ -> budget
    in
    let cap =
      match t.plan.Plan.write_chunk with
      | Some k -> min cap k
      | None -> cap
    in
    append_bytes mf buf off cap;
    t.accepted <- t.accepted + cap;
    cap
  end

let do_fsync t path mf =
  alive t;
  t.fsyncs <- t.fsyncs + 1;
  (match t.plan.Plan.fail_fsync with
  | Some nth when nth = t.fsyncs ->
    (* fsyncgate semantics: the dirty pages this fsync was meant to cover
       may be gone for good; the durable prefix does NOT advance. *)
    raise (eio "fsync" path)
  | _ -> ());
  mf.synced <- mf.len

let handle_of t path mf =
  {
    Io.write = (fun buf off len -> with_lock t (fun () -> do_write t path mf buf off len));
    fsync = (fun () -> with_lock t (fun () -> do_fsync t path mf));
    (* [close] never raises — it runs from [Fun.protect] finalisers, and
       after a power cut there is nothing left to close anyway. *)
    close = (fun () -> ());
  }

let rec register_dirs t dir =
  if dir <> "" && not (Hashtbl.mem t.dirs dir) then begin
    Hashtbl.replace t.dirs dir ();
    let parent = Filename.dirname dir in
    if parent <> dir then register_dirs t parent
  end

let io t =
  {
    Io.create =
      (fun path ->
        with_lock t (fun () ->
            alive t;
            let mf =
              match Hashtbl.find_opt t.files path with
              | Some mf ->
                (* O_TRUNC on an existing file *)
                mf.len <- 0;
                mf.synced <- 0;
                mf
              | None ->
                let mf = fresh_mf () in
                Hashtbl.replace t.files path mf;
                mf
            in
            handle_of t path mf));
    open_append =
      (fun path ->
        with_lock t (fun () ->
            alive t;
            match Hashtbl.find_opt t.files path with
            | None -> Error (path ^ ": no such file")
            | Some mf -> Ok (handle_of t path mf, mf.len)));
    read_file =
      (fun path ->
        with_lock t (fun () ->
            alive t;
            match Hashtbl.find_opt t.files path with
            | None -> Error (path ^ ": no such file")
            | Some mf -> Ok (content mf)));
    truncate =
      (fun path offset ->
        with_lock t (fun () ->
            alive t;
            match Hashtbl.find_opt t.files path with
            | None -> Error (path ^ ": no such file")
            | Some mf ->
              (* ftruncate + fsync: the shorter file is durable whole. *)
              mf.len <- min mf.len (max 0 offset);
              mf.synced <- mf.len;
              Ok ()));
    rename =
      (fun src dst ->
        with_lock t (fun () ->
            alive t;
            match Hashtbl.find_opt t.files src with
            | None -> raise (Unix.Unix_error (Unix.ENOENT, "rename", src))
            | Some mf ->
              Hashtbl.remove t.files src;
              Hashtbl.replace t.files dst mf));
    exists =
      (fun path ->
        with_lock t (fun () ->
            alive t;
            Hashtbl.mem t.files path || Hashtbl.mem t.dirs path));
    readdir =
      (fun dir ->
        with_lock t (fun () ->
            alive t;
            let acc = ref [] in
            Hashtbl.iter
              (fun path _ ->
                if Filename.dirname path = dir then
                  acc := Filename.basename path :: !acc)
              t.files;
            Hashtbl.iter
              (fun path _ ->
                if path <> dir && Filename.dirname path = dir then
                  acc := Filename.basename path :: !acc)
              t.dirs;
            Array.of_list (List.sort_uniq compare !acc)));
    remove =
      (fun path ->
        with_lock t (fun () ->
            alive t;
            Hashtbl.remove t.files path));
    mkdir_p = (fun dir -> with_lock t (fun () -> alive t; register_dirs t dir));
    fsync_dir = (fun _ -> with_lock t (fun () -> alive t));
  }

let image keep t =
  with_lock t (fun () ->
      let t' = create () in
      Hashtbl.iter
        (fun path mf ->
          let n = if keep then mf.len else mf.synced in
          Hashtbl.replace t'.files path
            { data = Bytes.sub mf.data 0 n; len = n; synced = n })
        t.files;
      Hashtbl.iter (fun d () -> Hashtbl.replace t'.dirs d ()) t.dirs;
      t')

let durable_image t = image false t
let flushed_image t = image true t
