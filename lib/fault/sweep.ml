module Pr = Jim_api.Protocol
module Service = Jim_server.Service
module Smoke = Jim_server.Smoke
module Store = Jim_store.Store
module Recovery = Jim_store.Recovery
module Journal = Jim_store.Journal
module W = Jim_workloads
open Jim_core

exception Divergence of string

let () =
  Printexc.register_printer (function
    | Divergence m -> Some ("Jim_fault.Sweep.Divergence: " ^ m)
    | _ -> None)

let div fmt = Printf.ksprintf (fun m -> raise (Divergence m)) fmt

type spec = {
  seed : int;
  strategies : string list;
  sessions : int;
  snapshot_every : int;
  commit_window : float;
}

let default =
  {
    seed = 41;
    strategies = [ "lookahead-entropy"; "random" ];
    sessions = 7;
    snapshot_every = 16;
    commit_window = 0.;
  }

type stats = { events : int; points : int; runs : int; images : int }

let data_dir = "/data"

(* ------------------------------------------------------------------ *)
(* The workload: the server smoke test's synthetic instances, driven   *)
(* in-process (no sockets) so a run costs microseconds.                *)

let params seed =
  { W.Synthetic.n_attrs = 5; n_tuples = 40; domain = 8; goal_rank = 2; seed }

let source_of seed =
  let p = params seed in
  Pr.Synthetic
    {
      n_attrs = p.W.Synthetic.n_attrs;
      n_tuples = p.W.Synthetic.n_tuples;
      domain = p.W.Synthetic.domain;
      goal_rank = p.W.Synthetic.goal_rank;
      seed = p.W.Synthetic.seed;
    }

let seed_of spec i = spec.seed + i
let strategy_of spec i = List.nth spec.strategies (i mod List.length spec.strategies)

(* Everything derivable from the spec alone, shared across the hundreds
   of faulted runs of a sweep. *)
type env = {
  spec : spec;
  oracles : Oracle.t array;
  expected : Session.outcome array;
  catalog : Jim_catalog.Catalog.t option;
      (* when set, every service of the sweep — the faulted runs and the
         recovery verifications — resolves instances through this one
         shared catalog, so recovery replays warm-start off shared
         entries exactly as a long-lived server would *)
}

let env_of ?catalog spec =
  if spec.sessions < 1 then invalid_arg "Sweep: sessions";
  if spec.strategies = [] then invalid_arg "Sweep: strategies";
  let oracle i =
    Oracle.of_goal
      (W.Synthetic.generate (params (seed_of spec i))).W.Synthetic.goal
  in
  let expected i =
    let inst = W.Synthetic.generate (params (seed_of spec i)) in
    let strategy =
      match Strategy.of_string (strategy_of spec i) with
      | Ok s -> s
      | Error m -> div "bad strategy %S: %s" (strategy_of spec i) m
    in
    Session.run ~seed:(seed_of spec i) ~strategy
      ~oracle:(Oracle.of_goal inst.W.Synthetic.goal)
      inst.W.Synthetic.relation
  in
  {
    spec;
    oracles = Array.init spec.sessions oracle;
    expected = Array.init spec.sessions expected;
    catalog;
  }

(* What the (simulated) client knows was acknowledged before the fault —
   the ground truth every recovery is checked against. *)
type progress = {
  ids : int array;  (** session id per index; [-1] until Started acked *)
  started : bool array;
  acked : int array;  (** acknowledged answers per index *)
}

let fresh_progress spec =
  {
    ids = Array.make spec.sessions (-1);
    started = Array.make spec.sessions false;
    acked = Array.make spec.sessions 0;
  }

let events_of progress =
  Array.fold_left ( + ) 0 progress.acked
  + Array.fold_left (fun n s -> if s then n + 1 else n) 0 progress.started

(* Service calls.  A store-level fault propagates as an exception
   ([Service.handle] does not catch); an unexpected *reply* is a
   divergence — the protocol broke without the disk breaking. *)

let start_session env service progress i =
  let seed = seed_of env.spec i in
  match
    Service.handle service
      (Pr.Start_session
         { source = source_of seed; strategy = strategy_of env.spec i; seed })
  with
  | Pr.Started { session; _ } ->
    progress.ids.(i) <- session;
    progress.started.(i) <- true
  | other -> div "start (seed %d): %s" seed (Pr.response_to_string other)

(* Answer one question; [false] when the session has converged. *)
let answer_one service oracle id =
  match Service.handle service (Pr.Get_question { session = id }) with
  | Pr.Question None -> false
  | Pr.Question (Some { Pr.cls; sg; _ }) -> (
    match
      Service.handle service
        (Pr.Answer { session = id; cls; label = Oracle.label oracle sg })
    with
    | Pr.Answered _ -> true
    | other -> div "answer (session %d): %s" id (Pr.response_to_string other))
  | other -> div "question (session %d): %s" id (Pr.response_to_string other)

let result_of service id =
  match Service.handle service (Pr.Result { session = id }) with
  | Pr.Outcome o -> o
  | other -> div "result (session %d): %s" id (Pr.response_to_string other)

let labeled_of service id =
  match Service.handle service (Pr.Stats { session = id }) with
  | Pr.Session_stats st -> st.Pr.labeled
  | other -> div "stats (session %d): %s" id (Pr.response_to_string other)

(* Start every session, then round-robin one answer at a time — so the
   journal interleaves sessions and a crash point usually cuts several
   sessions at different depths. *)
let run_workload env service progress =
  for i = 0 to env.spec.sessions - 1 do
    start_session env service progress i
  done;
  let live = Array.make env.spec.sessions true in
  let continue = ref true in
  while !continue do
    continue := false;
    for i = 0 to env.spec.sessions - 1 do
      if live.(i) then
        if answer_one service env.oracles.(i) progress.ids.(i) then begin
          progress.acked.(i) <- progress.acked.(i) + 1;
          continue := true
        end
        else live.(i) <- false
    done
  done

(* ------------------------------------------------------------------ *)
(* Faulted runs and their verification                                 *)

(* The process "dying": a power cut, an injected I/O error surfacing
   through the store, the journal refusing appends after poisoning, or a
   checkpoint abort ([Store] wraps failed snapshot writes in [Failure]).
   Anything else — notably [Divergence] — propagates. *)
let interrupted = function
  | Memfs.Power_cut | Unix.Unix_error _ | Journal.Poisoned | Failure _ -> true
  | _ -> false

let open_on ?(fsync = true) env fs =
  Store.open_dir ~fsync ~commit_window:env.spec.commit_window
    ~snapshot_every:env.spec.snapshot_every ~io:(Memfs.io fs) data_dir

(* Run the workload against [fs]; returns [`Completed] or
   [`Interrupted], with [progress] holding exactly what was acked. *)
let drive env fs progress =
  try
    (match open_on env fs with
    | Error m -> div "open_dir (fresh): %s" m
    | Ok (store, _) ->
      let service =
        Service.create ?catalog:env.catalog ~persist:(Store.record store) ()
      in
      run_workload env service progress;
      Store.close store);
    `Completed
  with e when interrupted e -> `Interrupted

(* The three-part contract, against recovered state — from a post-crash
   disk image or from a promoted replication standby. *)
let verify_recovered env progress (store, recovered) =
  let service =
    Service.create ?catalog:env.catalog ~persist:(Store.record store) ()
  in
  (match Service.restore service recovered with
  | Ok _ -> ()
  | Error m -> div "restore refused: %s" m);
  let find_seed seed =
    List.find_opt
      (fun s -> s.Recovery.seed = seed)
      recovered.Recovery.sessions
  in
  (* 1. acked Starteds survived, with answers in [acked, acked + 1] *)
  Array.iteri
    (fun i started ->
      if started then
        match find_seed (seed_of env.spec i) with
        | None ->
          div "session %d (seed %d) lost: Started was acknowledged" i
            (seed_of env.spec i)
        | Some s ->
          let labeled = labeled_of service s.Recovery.id in
          if labeled < progress.acked.(i) then
            div "session %d: %d answers acked, only %d recovered" i
              progress.acked.(i) labeled;
          if labeled > progress.acked.(i) + 1 then
            div "session %d: %d answers recovered, acked %d + at most 1 in flight"
              i labeled progress.acked.(i))
    progress.started;
  (* 2. every recovered session (acked or in-flight) resumes to the
     bit-identical outcome of an uninterrupted run *)
  List.iter
    (fun s ->
      let i = s.Recovery.seed - env.spec.seed in
      if i < 0 || i >= env.spec.sessions then
        div "recovered a session with unknown seed %d" s.Recovery.seed;
      let id = s.Recovery.id in
      while answer_one service env.oracles.(i) id do
        ()
      done;
      if not (Smoke.outcome_equal (result_of service id) env.expected.(i))
      then div "session %d (seed %d): resumed outcome diverges" i s.Recovery.seed)
    recovered.Recovery.sessions;
  Store.close store

(* The three-part contract, against one post-crash disk image. *)
let verify_image env progress fs =
  match open_on ~fsync:false env fs with
  | Error m -> div "recovery refused: %s" m
  | Ok recovered -> verify_recovered env progress recovered

(* One faulted run + both disk images verified.  A violation names the
   plan that provoked it — the sweep's whole reproduction recipe. *)
let check_plan env plan =
  let fs = Memfs.create ~plan () in
  let progress = fresh_progress env.spec in
  let outcome = drive env fs progress in
  let under what f =
    try f () with
    | Divergence m -> div "[%s, %s image] %s" (Plan.to_string plan) what m
  in
  under "durable" (fun () -> verify_image env progress (Memfs.durable_image fs));
  under "flushed" (fun () -> verify_image env progress (Memfs.flushed_image fs));
  outcome

(* Uninterrupted reference under [base] (chunking only, never faults):
   gives the ordinal/byte totals the sweeps enumerate, and pins the live
   outcomes to the in-process oracle runs. *)
let reference env base =
  let fs = Memfs.create ~plan:base () in
  let progress = fresh_progress env.spec in
  (match open_on env fs with
  | Error m -> div "reference open_dir: %s" m
  | Ok (store, _) ->
    let service =
      Service.create ?catalog:env.catalog ~persist:(Store.record store) ()
    in
    run_workload env service progress;
    Array.iteri
      (fun i id ->
        if not (Smoke.outcome_equal (result_of service id) env.expected.(i))
        then div "reference session %d diverges before any fault" i)
      progress.ids;
    Store.close store);
  (fs, progress)

let sweep_ordinals env ~check ~total ~stride ~plans_of =
  let points = ref 0 and runs = ref 0 and images = ref 0 in
  let n = ref 1 in
  while !n <= total do
    incr points;
    List.iter
      (fun plan ->
        ignore (check env plan);
        incr runs;
        images := !images + 2)
      (plans_of !n);
    n := !n + stride
  done;
  (!points, !runs, !images)

let stats_of progress (points, runs, images) =
  { events = events_of progress; points; runs; images }

let crash_sweep ?catalog ?chunk ?(stride = 1) ?(applied = [ 0; 3 ]) spec =
  if stride < 1 then invalid_arg "Sweep.crash_sweep: stride";
  let env = env_of ?catalog spec in
  let base = { Plan.none with write_chunk = chunk } in
  let fs, progress = reference env base in
  let counters =
    sweep_ordinals env ~check:check_plan ~total:(Memfs.writes fs) ~stride
      ~plans_of:(fun n ->
        List.map (fun a -> { base with Plan.crash_write = Some (n, a) }) applied)
  in
  stats_of progress counters

let fsync_sweep ?catalog ?(stride = 1) spec =
  if stride < 1 then invalid_arg "Sweep.fsync_sweep: stride";
  let env = env_of ?catalog spec in
  let fs, progress = reference env Plan.none in
  let counters =
    sweep_ordinals env ~check:check_plan ~total:(Memfs.fsyncs fs) ~stride
      ~plans_of:(fun n -> [ { Plan.none with fail_fsync = Some n } ])
  in
  stats_of progress counters

let write_error_sweep ?catalog ?(stride = 1) spec =
  if stride < 1 then invalid_arg "Sweep.write_error_sweep: stride";
  let env = env_of ?catalog spec in
  let fs, progress = reference env Plan.none in
  let counters =
    sweep_ordinals env ~check:check_plan ~total:(Memfs.writes fs) ~stride
      ~plans_of:(fun n -> [ { Plan.none with fail_write = Some n } ])
  in
  stats_of progress counters

let enospc_sweep ?catalog ?(points = 8) spec =
  if points < 1 then invalid_arg "Sweep.enospc_sweep: points";
  let env = env_of ?catalog spec in
  let fs, progress = reference env Plan.none in
  let total = Memfs.bytes_accepted fs in
  let runs = ref 0 and images = ref 0 in
  for j = 1 to points do
    (* Spread budgets over the run; the +1/+3 drift lands some of them
       mid-record rather than always on the same alignment. *)
    let budget = max 1 ((total * j / (points + 1)) + (j mod 4)) in
    ignore (check_plan env { Plan.none with enospc_after = Some budget });
    incr runs;
    images := !images + 2
  done;
  stats_of progress (points, !runs, !images)

let chunk_run ?catalog ~chunk spec =
  if chunk < 1 then invalid_arg "Sweep.chunk_run: chunk";
  let env = env_of ?catalog spec in
  let plan = { Plan.none with write_chunk = Some chunk } in
  (* [reference] both drives it and checks live outcomes; the images must
     then recover the completed sessions verbatim. *)
  let fs, progress = reference env plan in
  verify_image env progress (Memfs.durable_image fs);
  verify_image env progress (Memfs.flushed_image fs);
  stats_of progress (Memfs.writes fs, 1, 2)

(* ------------------------------------------------------------------ *)
(* Replicated pairs: primary + streaming standby, primary killed at    *)
(* every write ordinal, standby promoted and held to the contract.     *)

module Standby = Jim_shard.Standby
module Repl = Jim_shard.Repl

let standby_dir = "/standby"

(* One primary/standby pair: the primary runs on [fs] (possibly
   faulted), the standby on its own clean filesystem, attached through
   the in-process replication stream.  The persist hook is
   record-then-send, so an event reaches the standby only after it is
   durable on the primary — and the client is acked only after both.
   The standby filesystem is never faulted: the crash always hits the
   primary mid-record, before the send, which is exactly what makes
   "everything acked is on the standby" a checkable invariant. *)
let drive_pair env plan =
  let fs_b = Memfs.create () in
  let stb = Standby.create ~io:(Memfs.io fs_b) ~dir:standby_dir () in
  let fs_p = Memfs.create ~plan () in
  let progress = fresh_progress env.spec in
  let outcome =
    try
      (match open_on env fs_p with
      | Error m -> div "open_dir (fresh pair): %s" m
      | Ok (store, _) -> (
        match Repl.attach store (Repl.of_standby stb) with
        | Error m -> div "replication attach: %s" m
        | Ok repl ->
          let persist ev =
            Store.record store ev;
            Repl.send repl ev
          in
          let service = Service.create ?catalog:env.catalog ~persist () in
          run_workload env service progress;
          Store.close store));
      `Completed
    with e when interrupted e -> `Interrupted
  in
  (outcome, fs_p, stb, progress)

(* Promote the survivor and hold it to the same three-part contract a
   recovered disk image must meet: every acked event present, at most
   one in-flight beyond, every session resuming bit-identically. *)
let verify_pair env progress stb =
  match
    Standby.promote ~fsync:false ~snapshot_every:env.spec.snapshot_every stb
  with
  | Error m -> div "standby promotion refused: %s" m
  | Ok recovered -> verify_recovered env progress recovered

let replicated_sweep ?catalog ?(stride = 1) ?(applied = [ 0; 3 ]) spec =
  if stride < 1 then invalid_arg "Sweep.replicated_sweep: stride";
  let env = env_of ?catalog spec in
  (* Reference pair: no faults — pins the stream end-to-end (the
     promoted standby must resume every completed session verbatim) and
     counts the primary write ordinals the sweep enumerates. *)
  let outcome, fs_p, stb, progress = drive_pair env Plan.none in
  (match outcome with
  | `Completed -> ()
  | `Interrupted -> div "reference pair run interrupted without a fault");
  verify_pair env progress stb;
  let total = Memfs.writes fs_p in
  let points = ref 0 and runs = ref 0 and images = ref 0 in
  let n = ref 1 in
  while !n <= total do
    incr points;
    List.iter
      (fun a ->
        let plan = { Plan.none with crash_write = Some (!n, a) } in
        let _outcome, _fs, stb, prog = drive_pair env plan in
        (try verify_pair env prog stb
         with Divergence m ->
           div "[%s, promoted standby] %s" (Plan.to_string plan) m);
        incr runs;
        incr images)
      applied;
    n := !n + stride
  done;
  stats_of progress (!points, !runs, !images)

(* ------------------------------------------------------------------ *)
(* Crowd-labeled workload: the same sessions, answered by vote.        *)
(* Every session runs a [votes]-strong perfect crowd (unanimous goal   *)
(* labels), so each round's aggregate equals the oracle answer and the *)
(* reference outcomes stay those of [Session.run].  Only the decisive  *)
(* ballot touches the store (the absorbed aggregate, journaled as an   *)
(* ordinary Answered event); crash points therefore land exactly at    *)
(* aggregate-record boundaries — mid-vote-collection from the crowd's  *)
(* point of view.  Verification deliberately recovers into a service   *)
(* *without* crowd labeling: the journal must replay as plain answers, *)
(* proving no ballot or partial tally ever reached disk.               *)

module Coordinator = Jim_server.Coordinator

let crowd_config votes =
  (* A deadline the in-process run can never hit: rounds close by quorum
     only, so the ballot count per aggregate is exact. *)
  { Coordinator.votes; timeout = 3600.; weighted = false }

let check_votes who votes =
  if votes <= 0 || votes mod 2 = 0 then
    invalid_arg (who ^ ": votes must be odd and positive")

let crowd_attach service id votes =
  Array.init votes (fun _ ->
      match Service.handle service (Pr.Labeler_attach { session = id }) with
      | Pr.Labeler_attached { labeler; _ } -> labeler
      | other -> div "attach (session %d): %s" id (Pr.response_to_string other))

(* One voting round: poll for the question, then every labeler casts the
   goal label.  The quorum-th ballot must close the round (outcome on its
   ack); [false] when the session has converged. *)
let crowd_answer_one service oracle id labelers =
  match
    Service.handle service
      (Pr.Labeler_poll { session = id; labeler = labelers.(0) })
  with
  | Pr.Crowd_question { question = None; _ } -> false
  | Pr.Crowd_question { round; question = Some { Pr.sg; _ } } ->
    let label = Oracle.label oracle sg in
    let closed = ref false in
    Array.iter
      (fun l ->
        match
          Service.handle service
            (Pr.Vote { session = id; labeler = l; round; label })
        with
        | Pr.Vote_ok { outcome = Some _; _ } -> closed := true
        | Pr.Vote_ok _ -> ()
        | other -> div "vote (session %d): %s" id (Pr.response_to_string other))
      labelers;
    if not !closed then
      div "session %d: round %d open after %d unanimous ballots" id round
        (Array.length labelers);
    true
  | other -> div "poll (session %d): %s" id (Pr.response_to_string other)

(* As [run_workload], by vote: an "answer" is acked when the decisive
   ballot's reply carries the aggregate — i.e. after the journal write. *)
let run_crowd_workload env service ~votes progress =
  for i = 0 to env.spec.sessions - 1 do
    start_session env service progress i
  done;
  let labelers =
    Array.map (fun id -> crowd_attach service id votes) progress.ids
  in
  let live = Array.make env.spec.sessions true in
  let continue = ref true in
  while !continue do
    continue := false;
    for i = 0 to env.spec.sessions - 1 do
      if live.(i) then
        if
          crowd_answer_one service env.oracles.(i) progress.ids.(i)
            labelers.(i)
        then begin
          progress.acked.(i) <- progress.acked.(i) + 1;
          continue := true
        end
        else live.(i) <- false
    done
  done

let drive_crowd env ~votes fs progress =
  try
    (match open_on env fs with
    | Error m -> div "open_dir (fresh crowd): %s" m
    | Ok (store, _) ->
      let service =
        Service.create ?catalog:env.catalog ~persist:(Store.record store)
          ~crowd:(crowd_config votes) ()
      in
      run_crowd_workload env service ~votes progress;
      Store.close store);
    `Completed
  with e when interrupted e -> `Interrupted

(* The uninterrupted crowd reference doubles as the bit-identity proof:
   a perfect crowd's live outcomes must equal the noiseless in-process
   [Session.run] exactly. *)
let crowd_reference env ~votes base =
  let fs = Memfs.create ~plan:base () in
  let progress = fresh_progress env.spec in
  (match open_on env fs with
  | Error m -> div "crowd reference open_dir: %s" m
  | Ok (store, _) ->
    let service =
      Service.create ?catalog:env.catalog ~persist:(Store.record store)
        ~crowd:(crowd_config votes) ()
    in
    run_crowd_workload env service ~votes progress;
    Array.iteri
      (fun i id ->
        if not (Smoke.outcome_equal (result_of service id) env.expected.(i))
        then div "crowd reference session %d diverges before any fault" i)
      progress.ids;
    Store.close store);
  (fs, progress)

(* Faulted crowd run + both images verified — through [verify_image]'s
   plain (crowd-free) service, unchanged: the disk must look exactly as
   if the aggregates had been direct answers. *)
let check_crowd_plan env ~votes plan =
  let fs = Memfs.create ~plan () in
  let progress = fresh_progress env.spec in
  let outcome = drive_crowd env ~votes fs progress in
  let under what f =
    try f () with
    | Divergence m -> div "[%s, %s image] %s" (Plan.to_string plan) what m
  in
  under "durable" (fun () -> verify_image env progress (Memfs.durable_image fs));
  under "flushed" (fun () -> verify_image env progress (Memfs.flushed_image fs));
  outcome

let crowd_crash_sweep ?catalog ?chunk ?(stride = 1) ?(applied = [ 0; 3 ])
    ?(votes = 3) spec =
  if stride < 1 then invalid_arg "Sweep.crowd_crash_sweep: stride";
  check_votes "Sweep.crowd_crash_sweep" votes;
  let env = env_of ?catalog spec in
  let base = { Plan.none with write_chunk = chunk } in
  let fs, progress = crowd_reference env ~votes base in
  let counters =
    sweep_ordinals env
      ~check:(fun env plan -> check_crowd_plan env ~votes plan)
      ~total:(Memfs.writes fs) ~stride
      ~plans_of:(fun n ->
        List.map (fun a -> { base with Plan.crash_write = Some (n, a) }) applied)
  in
  stats_of progress counters

(* One fault-free primary/standby pair under the crowd workload: the
   replication stream carries only the aggregates, so the promoted
   standby must resume every session bit-identically with no crowd
   machinery of its own.  (Failover under faults is [replicated_sweep]'s
   job — the event stream is identical, crowd or not.) *)
let crowd_replicated_run ?catalog ?(votes = 3) spec =
  check_votes "Sweep.crowd_replicated_run" votes;
  let env = env_of ?catalog spec in
  let fs_b = Memfs.create () in
  let stb = Standby.create ~io:(Memfs.io fs_b) ~dir:standby_dir () in
  let fs_p = Memfs.create () in
  let progress = fresh_progress env.spec in
  (match open_on env fs_p with
  | Error m -> div "open_dir (crowd pair): %s" m
  | Ok (store, _) -> (
    match Repl.attach store (Repl.of_standby stb) with
    | Error m -> div "replication attach: %s" m
    | Ok repl ->
      let persist ev =
        Store.record store ev;
        Repl.send repl ev
      in
      let service =
        Service.create ?catalog:env.catalog ~persist
          ~crowd:(crowd_config votes) ()
      in
      run_crowd_workload env service ~votes progress;
      Array.iteri
        (fun i id ->
          if not (Smoke.outcome_equal (result_of service id) env.expected.(i))
          then div "crowd pair session %d diverges on the primary" i)
        progress.ids;
      Store.close store));
  verify_pair env progress stb;
  stats_of progress (1, 1, 1)
