(** Fault plans: what the in-memory filesystem ({!Memfs}) should break,
    and when.

    A plan is deterministic — ordinals count operations from the moment
    the filesystem is created, so replaying the same workload against the
    same plan injects the same fault at the same instruction.  [none]
    injects nothing (the filesystem is then just a fast, deterministic
    ramdisk).

    The string form (one [key=value] per fault, comma-separated) exists
    for CLI surfaces and test labels:

    {v
    none
    crash-write=7:3          power cut during the 7th write, 3 bytes applied
    fail-write=3             the 3rd write raises EIO
    short-write=5:2          the 5th write accepts only 2 bytes
    write-chunk=3            every write accepts at most 3 bytes
    fail-fsync=2             the 2nd fsync raises EIO
    enospc=4096              writes fail with ENOSPC after 4096 bytes
    v} *)

type t = {
  fail_write : int option;  (** 1-based ordinal of a write that raises EIO *)
  short_write : (int * int) option;
      (** [(n, k)]: the [n]th write accepts at most [k] bytes ([k >= 1]) *)
  write_chunk : int option;
      (** every write accepts at most this many bytes — multiplies the
          number of write boundaries a crash sweep can cut at *)
  fail_fsync : int option;  (** 1-based ordinal of an fsync that raises EIO *)
  enospc_after : int option;
      (** total byte budget; once accepted bytes reach it, writes raise
          ENOSPC *)
  crash_write : (int * int) option;
      (** [(n, applied)]: power cut during the [n]th write after [applied]
          bytes of it reached the page cache — every filesystem operation
          from then on raises {!Memfs.Power_cut} *)
}

val none : t

val to_string : t -> string

val of_string : string -> (t, string) result
