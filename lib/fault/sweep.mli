(** Exhaustive simulated crash sweeps: drive a full multi-session
    inference workload through a {!Jim_server.Service} persisted by a
    {!Jim_store.Store} running on a {!Memfs}, injure the filesystem at
    every interesting point, and prove recovery.

    Each sweep replays the {e same} deterministic workload (sessions over
    synthetic instances, oracle-answered, round-robin) under a family of
    {!Plan}s, then checks both post-crash disk images ({!Memfs.durable_image}
    and {!Memfs.flushed_image}) for the store's contract:

    - every session whose [Start_session] was acknowledged is recovered;
    - per session, recovered answers ∈ [acked, acked + 1] (at most the
      one in-flight record);
    - every recovered session, driven to completion, finishes
      bit-identical ({!Jim_server.Smoke.outcome_equal}) to an
      uninterrupted in-process {!Jim_core.Session.run}.

    No processes are spawned and no real disk is touched: one crash point
    costs two in-memory recoveries, so sweeping {e every} write boundary
    of a 50+-event workload is cheap enough for the default test run. *)

exception Divergence of string
(** A recovery contract violation (lost acked answer, diverged resume,
    refused recovery).  Injected faults themselves never raise this —
    they are the point. *)

type spec = {
  seed : int;  (** base seed; session [i] uses [seed + i] *)
  strategies : string list;  (** round-robin across sessions *)
  sessions : int;
  snapshot_every : int;
      (** keep small (e.g. 16) so sweeps cross checkpoint rotations *)
  commit_window : float;
      (** group-commit window ({!Jim_store.Store.open_dir}'s
          [commit_window]) for every store the sweep opens.  [0.]
          disables batching; a positive window makes the faulted runs
          stage records and combine fsyncs, so crash points land at
          batch boundaries and torn mid-batch — the durability contract
          must hold identically.  Ignored by [fsync:false] recovery
          opens (windowed commit requires fsync). *)
}

val default : spec
(** 7 sessions, lookahead-entropy/random alternating, [snapshot_every =
    16] — journals 60+ events and crosses several checkpoints.
    [commit_window = 0.] (unbatched); sweep with
    [{ default with commit_window = 0.002 }] to cover group commit. *)

type stats = {
  events : int;  (** events the uninterrupted reference run journals *)
  points : int;  (** fault points exercised *)
  runs : int;  (** faulted workload executions *)
  images : int;  (** post-crash disk images recovered and verified *)
}

val crash_sweep :
  ?catalog:Jim_catalog.Catalog.t ->
  ?chunk:int ->
  ?stride:int ->
  ?applied:int list ->
  spec ->
  stats
(** Power cut at every write ordinal of the reference run (or every
    [stride]th, default 1), each with every partial-application count in
    [applied] (default [[0; 3]]: a clean cut at the boundary and a torn
    tail 3 bytes in).  [chunk] caps bytes-per-write for the whole family
    ({!Plan.t.write_chunk}), multiplying the boundaries swept.  Raises
    {!Divergence} on any contract violation.

    [catalog] (here and in every sweep below): when given, {e all}
    services of the sweep — the faulted runs and every recovery
    verification — resolve instances through this one shared catalog, so
    recoveries warm-start off shared entries exactly as a long-lived
    server would.  The recovery contract must hold identically. *)

val fsync_sweep :
  ?catalog:Jim_catalog.Catalog.t -> ?stride:int -> spec -> stats
(** Fail every fsync ordinal (EIO, fsyncgate semantics: the journal
    poisons itself and refuses further appends); both images must still
    recover every previously acknowledged answer. *)

val write_error_sweep :
  ?catalog:Jim_catalog.Catalog.t -> ?stride:int -> spec -> stats
(** Fail every write ordinal with EIO (transient disk error — the
    filesystem survives, the journal poisons itself). *)

val enospc_sweep :
  ?catalog:Jim_catalog.Catalog.t -> ?points:int -> spec -> stats
(** Run the workload under [points] (default 8) byte budgets spread over
    the reference run's total accepted bytes; the disk filling mid-record
    must still leave every acked answer recoverable. *)

val chunk_run : ?catalog:Jim_catalog.Catalog.t -> chunk:int -> spec -> stats
(** No faults, but every write accepts at most [chunk] bytes: the
    short-write retry loops must reassemble bit-identical journals and
    the workload must complete exactly like the reference run. *)

val crowd_crash_sweep :
  ?catalog:Jim_catalog.Catalog.t ->
  ?chunk:int ->
  ?stride:int ->
  ?applied:int list ->
  ?votes:int ->
  spec ->
  stats
(** {!crash_sweep} over the {e crowd-labeled} workload: every session is
    answered by a [votes]-strong (default 3, must be odd and positive)
    perfect crowd — attach, poll, unanimous ballots — so each round
    closes by quorum on the decisive ballot's acknowledgement.  Only the
    absorbed aggregate is journaled, hence every crash point lands at an
    aggregate-record boundary: mid-vote-collection, from the crowd's
    point of view.  Both post-crash images are verified through a
    service {e without} crowd labeling, proving the journal replays as
    plain answers (no ballot, no partial tally, ever on disk) and the
    recovered sessions resume bit-identically.  The fault-free reference
    run additionally pins the perfect crowd's live outcomes to the
    noiseless in-process {!Jim_core.Session.run}. *)

val crowd_replicated_run :
  ?catalog:Jim_catalog.Catalog.t -> ?votes:int -> spec -> stats
(** One fault-free primary/standby pair under the crowd workload: the
    replication stream carries only the journaled aggregates, so the
    promoted standby — which has no crowd machinery at all — must
    resume every session bit-identically.  Failover under primary
    crashes is {!replicated_sweep}'s job; the event stream is identical
    whether answers arrived directly or by vote. *)

val replicated_sweep :
  ?catalog:Jim_catalog.Catalog.t ->
  ?stride:int ->
  ?applied:int list ->
  spec ->
  stats
(** The failover drill, in-process: a primary/standby pair joined by the
    {!Jim_shard.Repl} journal stream (persist = record locally, then
    ship; the client is acked only after both), the primary power-cut at
    every write ordinal ([stride]/[applied] as in {!crash_sweep}) — i.e.
    at every record boundary and torn mid-record — and the standby
    promoted ({!Jim_shard.Standby.promote}) in its place.  The promoted
    standby must meet the same three-part contract as a recovered disk
    image: every acked event present, at most one in-flight beyond,
    every session resuming bit-identically.  [images] counts promoted
    standbys (one per run; the primary's corpse is not re-examined —
    {!crash_sweep} owns that).  A fault-free reference pair is verified
    first, pinning the stream end-to-end. *)
