type t = {
  fail_write : int option;
  short_write : (int * int) option;
  write_chunk : int option;
  fail_fsync : int option;
  enospc_after : int option;
  crash_write : (int * int) option;
}

let none =
  {
    fail_write = None;
    short_write = None;
    write_chunk = None;
    fail_fsync = None;
    enospc_after = None;
    crash_write = None;
  }

let to_string t =
  let parts =
    List.filter_map Fun.id
      [
        Option.map (Printf.sprintf "fail-write=%d") t.fail_write;
        Option.map
          (fun (n, k) -> Printf.sprintf "short-write=%d:%d" n k)
          t.short_write;
        Option.map (Printf.sprintf "write-chunk=%d") t.write_chunk;
        Option.map (Printf.sprintf "fail-fsync=%d") t.fail_fsync;
        Option.map (Printf.sprintf "enospc=%d") t.enospc_after;
        Option.map
          (fun (n, a) -> Printf.sprintf "crash-write=%d:%d" n a)
          t.crash_write;
      ]
  in
  match parts with [] -> "none" | _ -> String.concat "," parts

let ( let* ) = Result.bind

let positive what v =
  if v >= 1 then Ok v else Error (Printf.sprintf "%s wants a count >= 1" what)

let int_arg what s =
  match int_of_string_opt (String.trim s) with
  | Some v -> positive what v
  | None -> Error (Printf.sprintf "%s: not a number: %S" what s)

let pair_arg what s =
  match String.split_on_char ':' s with
  | [ a; b ] ->
    let* a = int_arg what a in
    (* the second component may legitimately be 0 (crash with no bytes
       applied) *)
    (match int_of_string_opt (String.trim b) with
    | Some b when b >= 0 -> Ok (a, b)
    | _ -> Error (Printf.sprintf "%s: bad second component %S" what b))
  | _ -> Error (Printf.sprintf "%s wants N or N:K, got %S" what s)

let of_string s =
  let s = String.trim s in
  if s = "" || s = "none" then Ok none
  else
    List.fold_left
      (fun acc tok ->
        let* t = acc in
        match String.index_opt tok '=' with
        | None -> Error (Printf.sprintf "bad fault %S (want key=value)" tok)
        | Some i -> (
          let key = String.sub tok 0 i in
          let v = String.sub tok (i + 1) (String.length tok - i - 1) in
          match key with
          | "fail-write" ->
            let* n = int_arg key v in
            Ok { t with fail_write = Some n }
          | "short-write" ->
            let* p = pair_arg key v in
            if snd p < 1 then Error "short-write wants K >= 1"
            else Ok { t with short_write = Some p }
          | "write-chunk" ->
            let* n = int_arg key v in
            Ok { t with write_chunk = Some n }
          | "fail-fsync" ->
            let* n = int_arg key v in
            Ok { t with fail_fsync = Some n }
          | "enospc" ->
            let* n = int_arg key v in
            Ok { t with enospc_after = Some n }
          | "crash-write" ->
            let* p = pair_arg key v in
            Ok { t with crash_write = Some p }
          | _ ->
            Error
              (Printf.sprintf
                 "unknown fault %S (try fail-write, short-write, write-chunk, \
                  fail-fsync, enospc, crash-write)"
                 key)))
      (Ok none)
      (String.split_on_char ',' s)
