(* jim — the Join Inference Machine, at the terminal.

   Subcommands:
     demo      the guided four-mode demonstration on the paper's instance
     infer     interactive inference on a CSV file (a human labels tuples)
     compare   strategy comparison on a synthetic or built-in instance
     setcards  the joining-sets-of-pictures scenario (Fig. 5)
     tpch      crowd-style join tasks over the TPC-H-lite database
     serve     the session server (line-delimited JSON over a socket)
     standby   warm replica of a --replicate-to server; serves on promote
     router    consistent-hash front over several shards, with failover
     client    talk to a running server (batch / smoke / busy-check / crash drill)
     instance  register CSVs into a running server's catalog
     journal   inspect, verify or export from a durable data directory *)

module Partition = Jim_partition.Partition
module Relation = Jim_relational.Relation
module Schema = Jim_relational.Schema
module Csv = Jim_relational.Csv
module W = Jim_workloads
open Jim_core

let strategy_arg =
  let open Cmdliner in
  let doc =
    "Strategy for proposing tuples: " ^ String.concat ", " Strategy.names ^ "."
  in
  Arg.(
    value
    & opt string "lookahead-entropy"
    & info [ "s"; "strategy" ] ~docv:"STRATEGY" ~doc)

(* Candidate scoring fans out over this many domains (picks stay
   deterministic).  The flag overrides the JIM_DOMAINS environment
   variable; the default is sequential scoring. *)
let domains_arg =
  let open Cmdliner in
  let doc =
    "Score candidate tuples with $(docv) parallel domains (overrides \
     $(b,JIM_DOMAINS); default 1).  Picks are identical to sequential \
     scoring."
  in
  let set = function
    | None -> ()
    | Some d -> Scorer.set_domains d
  in
  Term.(
    const set $ Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N" ~doc))

(* ------------------------------------------------------------------ *)
(* Interactive loop shared by `infer`, `demo -i` and `setcards -i`.    *)

let save_transcript eng = function
  | None -> ()
  | Some path ->
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc (Transcript.to_string (Transcript.of_engine eng)));
    Printf.printf "Transcript written to %s\n" path

let interactive_loop ?(describe_row = fun rel r ->
    Jim_relational.Tuple0.to_string (Relation.tuple rel r))
    ?transcript ?eng ~strategy rel =
  let eng = match eng with Some e -> e | None -> Session.create rel in
  let rng = Random.State.make_self_init () in
  let src = Jim_tui.Prompt.stdin_source in
  let schema = Relation.schema rel in
  let rec loop () =
    match Session.question eng strategy rng with
    | None ->
      let q = Session.result eng in
      Printf.printf "\nInferred join predicate: %s\n"
        (Jim_tui.Render.partition_line schema q);
      Printf.printf "SQL: %s\n"
        (Jquery.to_sql ~from:[ Relation.name rel ] (Jquery.make schema q));
      (match Minimal.most_general (Session.state eng) with
      | [ mg ] when not (Jim_partition.Partition.equal mg q) ->
        Printf.printf "Most general equivalent: %s\n"
          (Jim_tui.Render.partition_line schema mg)
      | _ -> ());
      save_transcript eng transcript;
      `Done
    | Some ci ->
      let row = Sigclass.representative (Session.classes eng).(ci) in
      print_newline ();
      print_string (Jim_tui.Render.engine_view eng rel);
      print_string (Jim_tui.Progress.panel (Stats.of_engine eng));
      let question =
        Printf.sprintf "Should this tuple be in the join result?\n  %s\n"
          (describe_row rel row)
      in
      (match Jim_tui.Prompt.ask_label src question with
      | Jim_tui.Prompt.Quit ->
        print_endline "Session aborted.";
        save_transcript eng transcript;
        `Aborted
      | Jim_tui.Prompt.Help ->
        print_endline
          "Answer y if the shown tuple belongs to the join result you have \
           in mind, n otherwise; q aborts.  Grayed-out rows and why:";
        Array.iteri
          (fun r _ ->
            if Session.row_status eng r <> State.Informative then
              Printf.printf "  row %d: %s\n" (r + 1)
                (Explain.to_string schema (Session.explain_row eng r)))
          (Array.of_list (Relation.tuples rel));
        loop ()
      | Jim_tui.Prompt.Undo ->
        (match Session.undo eng with
        | Ok () -> print_endline "Last answer retracted."
        | Error _ -> print_endline "Nothing to undo.");
        loop ()
      | Jim_tui.Prompt.Yes | Jim_tui.Prompt.No as a ->
        let label =
          if a = Jim_tui.Prompt.Yes then State.Pos else State.Neg
        in
        (match Session.answer eng ci label with
        | Ok () -> loop ()
        | Error e ->
          Printf.printf "%s  (Last answer discarded.)\n"
            (String.capitalize_ascii (Session.error_to_string e));
          loop ()))
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* demo                                                                *)

(* Replay the paper's Section-2 narrative screen by screen: each answer,
   the grayed-out table, the statistics, and the certificates. *)
let run_walkthrough strategy =
  let instance = W.Flights.instance in
  let schema = W.Flights.schema in
  let goal = W.Flights.q2 in
  let oracle = Oracle.of_goal goal in
  let eng = Session.create instance in
  let rng = Random.State.make [| 0 |] in
  Printf.printf "Goal the simulated user has in mind: %s\n\n"
    (Jim_tui.Render.partition_line schema goal);
  print_string (Jim_tui.Render.engine_view eng instance);
  print_string (Jim_tui.Progress.panel (Stats.of_engine eng));
  let step = ref 0 in
  let rec go () =
    match Session.question eng strategy rng with
    | None ->
      Printf.printf "\nNo informative tuple left: unique up to \
                     instance-equivalence.\nInferred: %s\n"
        (Jim_tui.Render.partition_line schema (Session.result eng));
      0
    | Some ci ->
      incr step;
      let row = Sigclass.representative (Session.classes eng).(ci) in
      let sg = (Session.classes eng).(ci).Sigclass.sg in
      let label = Oracle.label oracle sg in
      Printf.printf "\n--- question %d: tuple (%d) -> user answers %s ---\n"
        !step (row + 1)
        (match label with State.Pos -> "yes (+)" | State.Neg -> "no (-)");
      (match Session.answer eng ci label with
      | Ok () -> ()
      | Error _ -> assert false);
      print_string (Jim_tui.Render.engine_view eng instance);
      print_string (Jim_tui.Progress.panel (Stats.of_engine eng));
      (* Certificates for what just got grayed out. *)
      Array.iteri
        (fun r _ ->
          if Session.row_status eng r <> State.Informative then
            Printf.printf "  (%d) %s\n" (r + 1)
              (Explain.to_string schema (Session.explain_row eng r)))
        (Array.of_list (Jim_relational.Relation.tuples instance));
      go ()
  in
  go ()

let run_demo interactive walkthrough strategy_name =
  match Strategy.of_string strategy_name with
  | Error e ->
    prerr_endline e;
    1
  | Ok strategy ->
    let instance = W.Flights.instance in
    Printf.printf
      "JIM demo - the travel agency's flight&hotel packages (Fig. 1)\n\n";
    print_string (Jim_tui.Render.table instance);
    if walkthrough then run_walkthrough strategy
    else if interactive then begin
      print_endline
        "\nThink of a join predicate over (From, To, Airline, City, \
         Discount)\n\
         - for instance To = City, or To = City AND Airline = Discount -\n\
         and answer the questions.";
      match interactive_loop ~strategy instance with `Done | `Aborted -> 0
    end
    else begin
      let goal = W.Flights.q2 in
      let oracle = Oracle.of_goal goal in
      Printf.printf "\nSimulated user goal: %s\n\n"
        (Jim_tui.Render.partition_line W.Flights.schema goal);
      let order = List.init (Relation.cardinality instance) (fun i -> i) in
      let r1 = Interaction.mode1_label_all ~order ~oracle instance in
      let r2 = Interaction.mode2_gray_out ~order ~oracle instance in
      let r3 = Interaction.mode3_top_k ~k:3 ~strategy ~oracle instance in
      let r4 = Interaction.mode4_interactive ~strategy ~oracle instance in
      print_string
        (Jim_tui.Barchart.benefit
           ~baseline:("1 label everything", r1.Interaction.labels_given)
           [
             ("2 gray out", r2.Interaction.labels_given);
             ("3 top-3", r3.Interaction.labels_given);
             ("4 JIM", r4.Interaction.labels_given);
           ]);
      Printf.printf "\nInferred (mode 4): %s\n"
        (Jim_tui.Render.partition_line W.Flights.schema r4.Interaction.query);
      0
    end

(* ------------------------------------------------------------------ *)
(* infer                                                               *)

let run_infer path strategy_name transcript replay_path =
  match Strategy.of_string strategy_name with
  | Error e ->
    prerr_endline e;
    1
  | Ok strategy -> (
    match Csv.load_auto path with
    | Error e ->
      Printf.eprintf "cannot load %s: %s\n" path e;
      1
    | Ok rel ->
      Printf.printf "Loaded %s: %d tuples, schema %s\n" path
        (Relation.cardinality rel)
        (Schema.to_string (Relation.schema rel));
      let replayed =
        match replay_path with
        | None -> Ok None
        | Some rp -> (
          let ic = open_in rp in
          let text =
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () -> really_input_string ic (in_channel_length ic))
          in
          match Transcript.of_string text with
          | Error e -> Error (Printf.sprintf "bad transcript %s: %s" rp e)
          | Ok t -> (
            let eng = Session.create rel in
            match Transcript.replay t eng with
            | Ok () ->
              Printf.printf "Replayed %d labels from %s.\n"
                (List.length t.Transcript.entries)
                rp;
              Ok (Some eng)
            | Error `Contradiction ->
              Error "transcript contradicts this instance"
            | Error `Arity_mismatch ->
              Error "transcript arity does not match this instance"))
      in
      match replayed with
      | Error e ->
        prerr_endline e;
        1
      | Ok eng -> (
        match interactive_loop ?transcript ?eng ~strategy rel with
        | `Done | `Aborted -> 0))

(* ------------------------------------------------------------------ *)
(* compare                                                             *)

let run_compare n_attrs rank tuples seed =
  let inst =
    W.Synthetic.generate
      {
        W.Synthetic.n_attrs;
        n_tuples = tuples;
        domain = max n_attrs 8;
        goal_rank = rank;
        seed;
      }
  in
  Printf.printf "Synthetic instance: %d attributes, %d tuples, goal %s\n\n"
    n_attrs tuples
    (Partition.to_string_names (Schema.names inst.W.Synthetic.schema)
       inst.W.Synthetic.goal);
  let oracle = Oracle.of_goal inst.W.Synthetic.goal in
  let counts =
    List.map
      (fun strat ->
        Metrics.reset ();
        let o =
          Session.run ~strategy:strat ~oracle inst.W.Synthetic.relation
        in
        Printf.printf "  %-20s %s\n" strat.Strategy.name
          (Metrics.to_string (Metrics.snapshot ()));
        (strat.Strategy.name, o.Session.interactions))
      Strategy.all
  in
  print_newline ();
  print_string (Jim_tui.Barchart.render (Jim_tui.Barchart.of_counts counts));
  0

(* ------------------------------------------------------------------ *)
(* setcards                                                            *)

let run_setcards interactive strategy_name sample =
  match Strategy.of_string strategy_name with
  | Error e ->
    prerr_endline e;
    1
  | Ok strategy ->
    let instance = W.Setcards.pair_instance ~sample ~seed:5 () in
    let describe_row rel r =
      W.Setcards.pair_to_string (Relation.tuple rel r)
    in
    if interactive then begin
      print_endline
        "Think of a rule for pairing Set cards (e.g. same colour and same \
         shading) and answer the questions.";
      match interactive_loop ~describe_row ~strategy instance with
      | `Done | `Aborted -> 0
    end
    else begin
      let goal = W.Setcards.same [ "colour"; "shading" ] in
      let oracle = Oracle.of_goal goal in
      let outcome = Session.run ~strategy ~oracle instance in
      Printf.printf "Goal: same colour and same shading\n";
      List.iter
        (fun (e : Session.event) ->
          Printf.printf "  %s -> %s\n"
            (describe_row instance e.Session.row)
            (match e.Session.label with State.Pos -> "yes" | State.Neg -> "no"))
        outcome.Session.events;
      Printf.printf "Inferred in %d questions: %s\n"
        outcome.Session.interactions
        (Jim_tui.Render.partition_line W.Setcards.pair_schema
           outcome.Session.query);
      0
    end

(* ------------------------------------------------------------------ *)
(* tpch                                                                *)

let run_tpch strategy_name =
  match Strategy.of_string strategy_name with
  | Error e ->
    prerr_endline e;
    1
  | Ok strategy ->
    let db = W.Tpch.generate ~seed:2 W.Tpch.tiny in
    let tasks =
      [
        ("customer-orders", W.Tpch.fk_customer_orders);
        ("orders-lineitem", W.Tpch.fk_orders_lineitem);
        ("region-nation-customer", W.Tpch.fk_nation_chain);
      ]
    in
    List.iter
      (fun (name, spec) ->
        match W.Denorm.task_of_names ~sample:300 ~seed:3 db spec with
        | Error e -> Printf.eprintf "%s: %s\n" name e
        | Ok task ->
          let outcome =
            Session.run ~strategy ~oracle:(W.Denorm.oracle task)
              task.W.Denorm.instance
          in
          let cross =
            Partition.restrict outcome.Session.query
              ~allowed:task.W.Denorm.cross_only
          in
          Printf.printf "%-24s %2d questions   %s\n" name
            outcome.Session.interactions
            (Jquery.to_sql ~from:task.W.Denorm.sources
               (Jquery.make task.W.Denorm.schema cross)))
      tasks;
    0

(* ------------------------------------------------------------------ *)
(* serve / client: the wire protocol                                   *)

let resolve_address socket tcp =
  match (socket, tcp) with
  | Some _, Some _ -> Error "--socket and --tcp are mutually exclusive"
  | Some path, None -> Ok (Jim_server.Wire.Unix_path path)
  | None, Some spec -> (
    match Jim_server.Wire.address_of_string spec with
    | Ok (Jim_server.Wire.Tcp _ as a) -> Ok a
    | Ok (Jim_server.Wire.Unix_path _) -> Error "--tcp wants HOST:PORT"
    | Error e -> Error e)
  | None, None -> Ok (Jim_server.Wire.Unix_path "/tmp/jim.sock")

let catalog_stats_line (s : Jim_api.Protocol.catalog_stats) =
  Printf.sprintf
    "catalog: %d entries (%d pinned, %d bytes), %d hits / %d misses, %d \
     evictions, %d fingerprints, %d derivations"
    s.Jim_api.Protocol.entries s.Jim_api.Protocol.pinned
    s.Jim_api.Protocol.bytes s.Jim_api.Protocol.hits s.Jim_api.Protocol.misses
    s.Jim_api.Protocol.evictions s.Jim_api.Protocol.fingerprints
    s.Jim_api.Protocol.derivations

let crowd_stats_line (c : Jim_api.Protocol.crowd_stats) =
  Printf.sprintf
    "crowd: %d labelers, quorum %d%s; %d rounds, %d paid labels, %d majority \
     flips, %d timeouts, %d re-asks"
    c.Jim_api.Protocol.labelers c.Jim_api.Protocol.votes
    (if c.Jim_api.Protocol.weighted then " (weighted)" else "")
    c.Jim_api.Protocol.rounds c.Jim_api.Protocol.paid_labels
    c.Jim_api.Protocol.majority_flips c.Jim_api.Protocol.timeouts
    c.Jim_api.Protocol.re_asks

let run_serve socket tcp max_sessions idle_ttl threads data_dir snapshot_every
    commit_window stats_every catalog_max_entries drain_timeout replicate_to
    votes vote_timeout vote_weighted =
  match
    match resolve_address socket tcp with
    | Error e -> Error e
    | Ok addr ->
      if votes = 0 then Ok (addr, None)
      else if votes < 0 || votes mod 2 = 0 then
        Error "--votes must be odd and positive (0 disables crowd labeling)"
      else if vote_timeout <= 0. then Error "--vote-timeout must be positive"
      else
        Ok
          ( addr,
            Some
              {
                Jim_server.Coordinator.votes;
                timeout = vote_timeout;
                weighted = vote_weighted;
              } )
  with
  | Error e ->
    Printf.eprintf "jim serve: %s\n" e;
    2
  | Ok (addr, crowd) -> (
    let store =
      match data_dir with
      | None -> Ok None
      | Some dir -> (
        match
          Jim_store.Store.open_dir ~snapshot_every ~commit_window dir
        with
        | Ok (st, recovered) -> Ok (Some (st, recovered))
        | Error e -> Error e)
    in
    match store with
    | Error e ->
      Printf.eprintf "jim serve: %s\n" e;
      1
    | Ok store -> (
      (* Replication attaches before any traffic: the standby receives
         the current snapshot + journal baseline, then every event rides
         the persist hook — journal locally, stream, only then ack. *)
      let repl =
        match (replicate_to, store) with
        | None, _ -> Ok None
        | Some _, None ->
          Error "--replicate-to needs --data-dir (nothing durable to ship)"
        | Some spec, Some (st, _) -> (
          match Jim_server.Wire.address_of_string spec with
          | Error e -> Error e
          | Ok standby_addr -> (
            let target =
              Jim_shard.Front.wire_target ~name:"replica" standby_addr
            in
            match Jim_shard.Repl.attach st target with
            | Error e -> Error ("replication attach failed: " ^ e)
            | Ok r -> Ok (Some r)))
      in
      match repl with
      | Error e ->
        Printf.eprintf "jim serve: %s\n" e;
        Option.iter (fun (st, _) -> Jim_store.Store.close st) store;
        1
      | Ok repl -> (
      let persist =
        Option.map
          (fun (st, _) ev ->
            Jim_store.Store.record st ev;
            Option.iter (fun r -> Jim_shard.Repl.send r ev) repl)
          store
      in
      let catalog =
        Jim_catalog.Catalog.create ~max_entries:catalog_max_entries ()
      in
      let service =
        Jim_server.Service.create ~max_sessions ~idle_ttl ~catalog ?persist
          ?crowd ()
      in
      let restored =
        match store with
        | None -> Ok 0
        | Some (_, recovered) -> Jim_server.Service.restore service recovered
      in
      match restored with
      | Error e ->
        Printf.eprintf "jim serve: recovery failed: %s\n" e;
        Option.iter (fun (st, _) -> Jim_store.Store.close st) store;
        1
      | Ok restored ->
        (* When replicating, answer Repl_status ourselves with the
           stream's current lag (the router's Ring_status probe);
           everything else goes to the service as usual. *)
        let handle_line payload =
          match repl with
          | Some r when String.length payload <= 64 -> (
            match Jim_api.Protocol.request_of_string payload with
            | Ok Jim_api.Protocol.Repl_status ->
              let records, bytes = Jim_shard.Repl.lag r in
              ( Jim_api.Protocol.response_to_string
                  (Jim_api.Protocol.Repl_lag { records; bytes }),
                true )
            | _ -> Jim_server.Service.handle_line_status service payload)
          | _ -> Jim_server.Service.handle_line_status service payload
        in
        let config =
          { Jim_server.Wire.default_config with threads; drain_timeout }
        in
        let server =
          Jim_server.Wire.serve_handler ~config
            ~sweep:(fun () -> Jim_server.Service.sweep service)
            handle_line addr
        in
        Printf.printf
          "jim serve: listening on %s (max %d sessions, %d threads)\n%!"
          (Jim_server.Wire.address_to_string
             (Jim_server.Wire.bound_address server))
          max_sessions threads;
        Option.iter
          (fun (c : Jim_server.Coordinator.config) ->
            Printf.printf
              "jim serve: crowd labeling on — quorum %d, %gs straggler \
               deadline%s\n%!"
              c.Jim_server.Coordinator.votes c.Jim_server.Coordinator.timeout
              (if c.Jim_server.Coordinator.weighted then ", accuracy-weighted"
               else ""))
          crowd;
        Option.iter
          (fun r ->
            let gen, records = Jim_shard.Repl.position r in
            Printf.printf
              "jim serve: replicating to %s (generation %d, %d records \
               shipped)\n%!"
              (Jim_shard.Repl.describe r) gen records)
          repl;
        Option.iter
          (fun (st, _) ->
            Printf.printf
              "jim serve: durable in %s (generation %d, %d sessions recovered)\n%!"
              (Jim_store.Store.dir st)
              (Jim_store.Store.generation st)
              restored)
          store;
        let commit_line () =
          match store with
          | Some (st, _) when commit_window > 0. ->
            let s = Jim_store.Store.commit_stats st in
            Printf.sprintf "; commit: %d batches / %d records (max %d)"
              s.Jim_store.Journal.batches s.Jim_store.Journal.records
              s.Jim_store.Journal.max_batch
          | _ -> ""
        in
        let stats_line () =
          Printf.sprintf "wire: %s; %s%s"
            (Jim_server.Netstats.to_string (Jim_server.Netstats.snapshot ()))
            (catalog_stats_line (Jim_catalog.Catalog.stats catalog))
            (commit_line ())
        in
        Option.iter
          (fun period ->
            ignore
              (Thread.create
                 (fun () ->
                   while true do
                     Thread.delay period;
                     Printf.printf "jim serve: %s\n%!" (stats_line ())
                   done)
                 ()))
          stats_every;
        Jim_server.Wire.wait server;
        Printf.printf "jim serve: %s\n%!" (stats_line ());
        Option.iter Jim_shard.Repl.close repl;
        Option.iter (fun (st, _) -> Jim_store.Store.close st) store;
        0)))

(* standby: the receiving half of the replication stream               *)

let run_standby socket tcp data_dir snapshot_every threads drain_timeout =
  match resolve_address socket tcp with
  | Error e ->
    Printf.eprintf "jim standby: %s\n" e;
    2
  | Ok addr ->
    let stb = Jim_shard.Standby.create ~dir:data_dir () in
    let node = Jim_shard.Front.standby_node ~snapshot_every stb in
    let config =
      { Jim_server.Wire.default_config with threads; drain_timeout }
    in
    let server =
      Jim_server.Wire.serve_handler ~config
        ~sweep:(fun () -> Jim_shard.Front.sweep node)
        (Jim_shard.Front.handle_line node)
        addr
    in
    Printf.printf
      "jim standby: listening on %s, accumulating in %s (serves after \
       Promote)\n%!"
      (Jim_server.Wire.address_to_string (Jim_server.Wire.bound_address server))
      data_dir;
    Jim_server.Wire.wait server;
    Jim_shard.Standby.close stb;
    0

(* router: the consistent-hash front over the shards                   *)

(* --shard/--standby take NAME=ADDR; the names key the hash ring, so
   they must be stable across restarts for placements to replay. *)
let parse_named what spec =
  match String.index_opt spec '=' with
  | None | Some 0 ->
    Error (Printf.sprintf "--%s wants NAME=ADDR, got %S" what spec)
  | Some i -> (
    let name = String.sub spec 0 i in
    let addr = String.sub spec (i + 1) (String.length spec - i - 1) in
    match Jim_server.Wire.address_of_string addr with
    | Ok a -> Ok (name, a)
    | Error e -> Error (Printf.sprintf "--%s %s: %s" what name e))

let run_router socket tcp shard_specs standby_specs data_dir vnodes threads
    drain_timeout =
  let ( let* ) r k =
    match r with
    | Error e ->
      Printf.eprintf "jim router: %s\n" e;
      2
    | Ok v -> k v
  in
  let rec parse_all what = function
    | [] -> Ok []
    | spec :: rest -> (
      match parse_named what spec with
      | Error e -> Error e
      | Ok p -> Result.map (fun ps -> p :: ps) (parse_all what rest))
  in
  let* listen = resolve_address socket tcp in
  let* shards = parse_all "shard" shard_specs in
  let* standbys = parse_all "standby" standby_specs in
  let* () =
    if shards = [] then Error "at least one --shard NAME=ADDR is required"
    else Ok ()
  in
  let* () =
    match
      List.find_opt
        (fun (n, _) -> not (List.mem_assoc n shards))
        standbys
    with
    | Some (n, _) ->
      Error (Printf.sprintf "--standby %s names no --shard" n)
    | None -> Ok ()
  in
  let upstreams =
    List.map
      (fun (name, primary) ->
        let standby = List.assoc_opt name standbys in
        Jim_shard.Front.wire_upstream ~name ~primary ?standby ())
      shards
  in
  let* router =
    Jim_shard.Router.create ?dir:data_dir ~vnodes ~shards:upstreams ()
  in
  let config =
    { Jim_server.Wire.default_config with threads; drain_timeout }
  in
  let server =
    Jim_server.Wire.serve_handler ~config
      (Jim_shard.Router.handle_line router)
      listen
  in
  Printf.printf
    "jim router: listening on %s, %d shards (%d with standbys), %d live \
     placements\n%!"
    (Jim_server.Wire.address_to_string (Jim_server.Wire.bound_address server))
    (List.length shards) (List.length standbys)
    (Jim_shard.Router.session_count router);
  Option.iter
    (fun dir -> Printf.printf "jim router: placements durable in %s\n%!" dir)
    data_dir;
  Jim_server.Wire.wait server;
  Jim_shard.Router.close router;
  0

(* Exit-code policy: a drill passes only when every expected report came
   back and none of them diverged.  An empty (or short) report list is a
   failure — a driver thread dying or an empty state file must not read
   as "0/0 sessions ok".  Transport drops fail too unless the caller
   opted in with --tolerate-drops (chaos-proxy runs, where drops are the
   injected fault). *)
let print_reports ?expected ~tolerate_drops verdict reports =
  let diverged, dropped =
    List.partition
      (fun r -> not r.Jim_server.Smoke.dropped)
      (List.filter (fun r -> not r.Jim_server.Smoke.ok) reports)
  in
  List.iter
    (fun r ->
      let open Jim_server.Smoke in
      if r.ok then
        Printf.printf "seed %d %-18s ok (%d questions)\n" r.seed r.strategy
          r.questions
      else if r.dropped then
        Printf.printf "seed %d %-18s %s: %s\n" r.seed r.strategy
          (if tolerate_drops then "dropped (tolerated)" else "DROPPED")
          r.detail
      else
        Printf.printf "seed %d %-18s FAILED: %s\n" r.seed r.strategy r.detail)
    reports;
  Printf.printf "%d/%d sessions %s%s\n"
    (List.length reports - List.length diverged - List.length dropped)
    (List.length reports) verdict
    (if dropped = [] then ""
     else Printf.sprintf " (%d dropped)" (List.length dropped));
  if reports = [] then begin
    Printf.eprintf "jim client: no sessions ran at all\n";
    1
  end
  else
    match expected with
    | Some n when List.length reports <> n ->
      Printf.eprintf "jim client: expected %d reports, got %d\n" n
        (List.length reports);
      1
    | _ ->
      if diverged <> [] then 1
      else if dropped <> [] && not tolerate_drops then 1
      else 0

(* An interactive session on an already-cataloged instance, over the
   wire: the client ships no data (just the fingerprint) and holds no
   relation, so questions are shown as the representative row index plus
   the signature partition the server sent. *)
let run_client_instance ~address ~framing ~fp ~strategy ~seed =
  let module P = Jim_api.Protocol in
  let module Wire = Jim_server.Wire in
  match Wire.connect ~retries:50 ~framing address with
  | Error e ->
    Printf.eprintf "jim client: connect: %s\n" e;
    1
  | Ok conn ->
    let finish rc =
      Wire.close conn;
      rc
    in
    let fail what e =
      Printf.eprintf "jim client: %s: %s\n" what e;
      finish 1
    in
    let call what req k =
      match Wire.call conn req with
      | Error e -> fail what e
      | Ok (P.Failed err) -> fail what (P.error_to_string err)
      | Ok reply -> k reply
    in
    call "start"
      (P.Start_session { source = P.Catalog fp; strategy; seed })
    @@ function
    | P.Started { session; arity; classes; tuples; strategy } ->
      Printf.printf
        "Session %d on instance %s: arity %d, %d classes, %d tuples, %s\n"
        session fp arity classes tuples strategy;
      let src = Jim_tui.Prompt.stdin_source in
      let rec loop () =
        call "question" (P.Get_question { session }) @@ function
        | P.Question None ->
          (call "result" (P.Result { session }) @@ function
           | P.Outcome o ->
             Printf.printf "\nInferred join predicate: %s\n"
               (Partition.to_string o.Session.query);
             call "end" (P.End_session { session }) @@ fun _ -> finish 0
           | other -> fail "result" (P.response_to_string other))
        | P.Question (Some q) ->
          let question =
            Printf.sprintf
              "Should this tuple be in the join result?\n\
              \  row (%d), signature %s\n"
              (q.P.row + 1)
              (Partition.to_string q.P.sg)
          in
          (match Jim_tui.Prompt.ask_label src question with
          | Jim_tui.Prompt.Quit ->
            print_endline "Session aborted.";
            call "end" (P.End_session { session }) @@ fun _ -> finish 0
          | Jim_tui.Prompt.Help ->
            print_endline
              "Answer y if the shown tuple belongs to the join result you \
               have in mind, n otherwise; u retracts, q aborts.  The \
               signature partition groups the attributes whose values \
               coincide on that row.";
            loop ()
          | Jim_tui.Prompt.Undo ->
            (call "undo" (P.Undo { session }) @@ fun _ ->
             print_endline "Last answer retracted.";
             loop ())
          | (Jim_tui.Prompt.Yes | Jim_tui.Prompt.No) as a ->
            let label =
              if a = Jim_tui.Prompt.Yes then State.Pos else State.Neg
            in
            call "answer" (P.Answer { session; cls = q.P.cls; label })
            @@ fun _ -> loop ())
        | other -> fail "question" (P.response_to_string other)
      in
      loop ()
    | other -> fail "start" (P.response_to_string other)

(* Controller half of the multi-process crowd drill: start the session,
   announce its id (the drill script hands it to the jim labeler
   processes), wait for convergence and judge the inferred predicate
   against the noiseless reference run. *)
let run_client_crowd ~address ~framing ~seed ~strategy:strategy_name ~deadline
    ~receive_timeout ~expect_flips =
  let module P = Jim_api.Protocol in
  let module Wire = Jim_server.Wire in
  match Strategy.of_string strategy_name with
  | Error e ->
    prerr_endline e;
    2
  | Ok strat -> (
    let p = Jim_server.Smoke.synthetic_params seed in
    let inst = W.Synthetic.generate p in
    let reference =
      Session.run ~seed ~strategy:strat
        ~oracle:(Oracle.of_goal inst.W.Synthetic.goal)
        inst.W.Synthetic.relation
    in
    match Wire.connect ~retries:50 ~framing address with
    | Error e ->
      Printf.eprintf "jim client: connect: %s\n" e;
      1
    | Ok conn ->
      Wire.set_timeout conn receive_timeout;
      let finish rc =
        Wire.close conn;
        rc
      in
      let fail what e =
        Printf.eprintf "jim client: %s: %s\n" what e;
        finish 1
      in
      let call what req k =
        match Wire.call conn req with
        | Error e -> fail what e
        | Ok (P.Failed err) -> fail what (P.error_to_string err)
        | Ok reply -> k reply
      in
      let source =
        P.Synthetic
          {
            n_attrs = p.W.Synthetic.n_attrs;
            n_tuples = p.W.Synthetic.n_tuples;
            domain = p.W.Synthetic.domain;
            goal_rank = p.W.Synthetic.goal_rank;
            seed = p.W.Synthetic.seed;
          }
      in
      call "start" (P.Start_session { source; strategy = strategy_name; seed })
      @@ function
      | P.Started { session; _ } ->
        Printf.printf "jim client: crowd session %d started (instance seed %d)\n%!"
          session seed;
        let t0 = Unix.gettimeofday () in
        let rec wait () =
          if Unix.gettimeofday () -. t0 > deadline then
            fail "crowd"
              (Printf.sprintf "no convergence within %.0f s (are enough jim \
                               labeler processes attached?)" deadline)
          else
            call "question" (P.Get_question { session }) @@ function
            | P.Question (Some _) ->
              Thread.delay 0.05;
              wait ()
            | P.Question None ->
              (call "stats" (P.Crowd_stats { session }) @@ function
               | P.Crowd_info c ->
                 (call "result" (P.Result { session }) @@ function
                  | P.Outcome o ->
                    (call "end" (P.End_session { session }) @@ fun _ ->
                     print_endline (crowd_stats_line c);
                     if
                       not
                         (Partition.equal o.Session.query
                            reference.Session.query)
                     then begin
                       Printf.eprintf
                         "jim client: crowd diverged: inferred %s, reference %s\n"
                         (Partition.to_string o.Session.query)
                         (Partition.to_string reference.Session.query);
                       finish 1
                     end
                     else if expect_flips && c.P.majority_flips = 0 then begin
                       Printf.eprintf
                         "jim client: crowd converged but the majority never \
                          overruled a dissenting ballot (expected under the \
                          drill's seeded noise)\n";
                       finish 1
                     end
                     else begin
                       Printf.printf
                         "jim client: crowd converged to the goal predicate \
                          in %d rounds (%d paid labels)\n"
                         c.P.rounds c.P.paid_labels;
                       finish 0
                     end)
                  | other -> fail "result" (P.response_to_string other))
               | other -> fail "stats" (P.response_to_string other))
            | other -> fail "question" (P.response_to_string other)
        in
        wait ()
      | other -> fail "start" (P.response_to_string other))

let run_labeler socket tcp binary session instance error_rate labeler_seed
    poll_interval receive_timeout =
  let framing =
    if binary then Jim_server.Wire.Binary else Jim_server.Wire.Line
  in
  match
    match resolve_address socket tcp with
    | Error e -> Error e
    | Ok address ->
      if error_rate < 0. || error_rate > 1. then
        Error "--error-rate must be within [0, 1]"
      else Ok address
  with
  | Error e ->
    Printf.eprintf "jim labeler: %s\n" e;
    2
  | Ok address -> (
    let inst =
      W.Synthetic.generate (Jim_server.Smoke.synthetic_params instance)
    in
    let oracle =
      Oracle.noisy ~seed:labeler_seed ~flip_probability:error_rate
        (Oracle.of_goal inst.W.Synthetic.goal)
    in
    match
      Jim_server.Smoke.run_labeler ~framing ~receive_timeout ~poll_interval
        ~address ~session ~oracle ()
    with
    | Ok (cast, counted) ->
      Printf.printf "jim labeler: session %d done — %d ballots cast, %d counted\n"
        session cast counted;
      0
    | Error e ->
      Printf.eprintf "jim labeler: %s\n" e;
      1)

let run_client socket tcp batch smoke pipeline busy crash_start crash_resume
    state_file tolerate_drops binary instance catalog_smoke strategy_name seed
    receive_timeout crowd_start crowd_deadline expect_flips =
  let framing =
    if binary then Jim_server.Wire.Binary else Jim_server.Wire.Line
  in
  match resolve_address socket tcp with
  | Error e ->
    Printf.eprintf "jim client: %s\n" e;
    2
  | Ok address -> (
    match crowd_start with
    | Some cseed ->
      run_client_crowd ~address ~framing ~seed:cseed ~strategy:strategy_name
        ~deadline:crowd_deadline ~receive_timeout ~expect_flips
    | None -> (
    match (catalog_smoke, instance) with
    | Some clients, _ -> (
      match
        Jim_server.Smoke.catalog_smoke ~clients ~framing ~receive_timeout
          ~address ()
      with
      | Error e ->
        Printf.eprintf "jim client: catalog smoke: %s\n" e;
        1
      | Ok (reports, stats) ->
        let rc =
          print_reports ~expected:clients ~tolerate_drops
            "bit-identical through the shared catalog entry" reports
        in
        print_endline (catalog_stats_line stats);
        if stats.Jim_api.Protocol.hits <= 0 then begin
          Printf.eprintf
            "jim client: catalog smoke: sessions never hit the catalog\n";
          1
        end
        else rc)
    | None, Some fp ->
      run_client_instance ~address ~framing ~fp ~strategy:strategy_name ~seed
    | None, None -> (
    match (smoke, busy, crash_start, crash_resume) with
    | Some clients, _, _, _ when pipeline > 1 ->
      (* [clients] total sessions, [pipeline] interleaved per
         connection: the pipelined smoke keeps every connection
         [pipeline] requests deep while holding each session to the
         usual bit-identity bar. *)
      let conns = max 1 (clients / pipeline) in
      print_reports
        ~expected:(conns * pipeline)
        ~tolerate_drops "bit-identical to the local run (pipelined)"
        (Jim_server.Smoke.run_pipelined ~clients:conns ~pipeline ~framing
           ~receive_timeout ~address ())
    | Some clients, _, _, _ ->
      print_reports ~expected:clients ~tolerate_drops
        "bit-identical to the local run"
        (Jim_server.Smoke.run ~clients ~framing ~receive_timeout ~address ())
    | None, _, Some clients, _ ->
      print_reports ~expected:clients ~tolerate_drops
        "left half-answered for the crash drill"
        (Jim_server.Smoke.crash_start ~address ~state_file ~clients
           ~receive_timeout ())
    | None, _, None, true ->
      print_reports ~tolerate_drops
        "resumed bit-identical to an uninterrupted run"
        (Jim_server.Smoke.crash_resume ~address ~state_file ~receive_timeout ())
    | None, Some fill, None, false -> (
      match Jim_server.Smoke.busy_check ~receive_timeout ~address ~fill () with
      | Ok () ->
        Printf.printf
          "busy-check ok: session %d refused with Server_busy\n" (fill + 1);
        0
      | Error e ->
        Printf.eprintf "busy-check FAILED: %s\n" e;
        1)
    | None, None, None, false -> (
      (* batch mode: raw request lines in, raw response lines out *)
      let ic =
        match batch with
        | None | Some "-" -> stdin
        | Some path -> open_in path
      in
      match Jim_server.Wire.connect ~retries:50 ~framing address with
      | Error e ->
        Printf.eprintf "jim client: connect: %s\n" e;
        1
      | Ok conn ->
        let rc = ref 0 in
        (try
           while true do
             let line = String.trim (input_line ic) in
             if line <> "" then
               match Jim_server.Wire.call_line conn line with
               | Ok reply -> print_endline reply
               | Error e ->
                 Printf.eprintf "jim client: %s\n" e;
                 rc := 1;
                 raise Exit
           done
         with End_of_file | Exit -> ());
        Jim_server.Wire.close conn;
        if ic != stdin then close_in ic;
        !rc))))

(* ------------------------------------------------------------------ *)
(* instance: the catalog surface of a running server                   *)

let with_server_call ~what socket tcp binary req k =
  let framing =
    if binary then Jim_server.Wire.Binary else Jim_server.Wire.Line
  in
  match resolve_address socket tcp with
  | Error e ->
    Printf.eprintf "jim instance %s: %s\n" what e;
    2
  | Ok address -> (
    match Jim_server.Wire.connect ~retries:50 ~framing address with
    | Error e ->
      Printf.eprintf "jim instance %s: connect: %s\n" what e;
      1
    | Ok conn ->
      let reply = Jim_server.Wire.call conn req in
      Jim_server.Wire.close conn;
      (match reply with
      | Error e ->
        Printf.eprintf "jim instance %s: %s\n" what e;
        1
      | Ok (Jim_api.Protocol.Failed err) ->
        Printf.eprintf "jim instance %s: %s\n" what
          (Jim_api.Protocol.error_to_string err);
        1
      | Ok reply -> k reply))

let run_instance_register socket tcp binary path =
  let ic = open_in path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  with_server_call ~what:"register" socket tcp binary
    (Jim_api.Protocol.Register_instance
       { source = Jim_api.Protocol.Csv_inline text })
    (function
      | Jim_api.Protocol.Registered { fingerprint; arity; classes; tuples } ->
        Printf.printf "%s\n" fingerprint;
        Printf.printf
          "registered %s: arity %d, %d classes, %d tuples\n\
           start sessions with:  jim client --instance %s\n"
          path arity classes tuples fingerprint;
        0
      | other ->
        Printf.eprintf "jim instance register: unexpected reply: %s\n"
          (Jim_api.Protocol.response_to_string other);
        1)

let run_instance_stats socket tcp binary =
  with_server_call ~what:"stats" socket tcp binary Jim_api.Protocol.Catalog_stats
    (function
      | Jim_api.Protocol.Catalog_info stats ->
        print_endline (catalog_stats_line stats);
        0
      | other ->
        Printf.eprintf "jim instance stats: unexpected reply: %s\n"
          (Jim_api.Protocol.response_to_string other);
        1)

(* ------------------------------------------------------------------ *)
(* chaos: the wire fault-injection proxy                               *)

let run_chaos socket tcp upstream plan =
  match
    let ( let* ) = Result.bind in
    let* listen = resolve_address socket tcp in
    let* upstream = Jim_server.Wire.address_of_string upstream in
    let* plan = Jim_server.Chaos.plan_of_string plan in
    Ok (listen, upstream, plan)
  with
  | Error e ->
    Printf.eprintf "jim chaos: %s\n" e;
    2
  | Ok (listen, upstream, plan) -> (
    let log line = Printf.eprintf "jim chaos: %s\n%!" line in
    match Jim_server.Chaos.start ~log ~plan ~listen ~upstream () with
    | Error e ->
      Printf.eprintf "jim chaos: %s\n" e;
      1
    | Ok proxy ->
      Printf.printf "jim chaos: %s -> %s, plan %s\n%!"
        (Jim_server.Wire.address_to_string (Jim_server.Chaos.bound proxy))
        (Jim_server.Wire.address_to_string upstream)
        (Jim_server.Chaos.plan_to_string plan);
      let stop _ =
        let st = Jim_server.Chaos.stop proxy in
        Printf.printf
          "jim chaos: %d connections, %d dropped, %d trickled, %d partial, \
           %d stalled\n%!"
          st.Jim_server.Chaos.connections st.Jim_server.Chaos.dropped
          st.Jim_server.Chaos.trickled st.Jim_server.Chaos.chopped
          st.Jim_server.Chaos.stalled;
        exit 0
      in
      (try
         ignore (Sys.signal Sys.sigint (Sys.Signal_handle stop));
         ignore (Sys.signal Sys.sigterm (Sys.Signal_handle stop))
       with Invalid_argument _ -> ());
      Jim_server.Chaos.wait proxy;
      0)

(* ------------------------------------------------------------------ *)
(* journal: offline inspection of a data directory                     *)

let transcript_of_steps arity steps =
  let entries_rev =
    List.fold_left
      (fun acc (step : Jim_store.Recovery.step) ->
        match step with
        | Jim_store.Recovery.Label { sg; label; _ } ->
          { Transcript.sg; label } :: acc
        | Jim_store.Recovery.Undo -> (
          match acc with [] -> [] | _ :: tl -> tl))
      [] steps
  in
  { Transcript.arity; entries = List.rev entries_rev; result = None }

let run_journal_inspect dir =
  match Jim_store.Recovery.load dir with
  | Error e ->
    Printf.eprintf "jim journal inspect: %s\n" e;
    1
  | Ok r ->
    Printf.printf "data directory   %s\n" dir;
    Printf.printf "generation       %d\n" r.Jim_store.Recovery.generation;
    Printf.printf "next session id  %d\n" r.Jim_store.Recovery.next_id;
    Printf.printf "journal          %s (%d records%s)\n"
      r.Jim_store.Recovery.journal_path r.Jim_store.Recovery.journal_records
      (match r.Jim_store.Recovery.torn with
      | None -> ""
      | Some (offset, bytes) ->
        Printf.sprintf ", torn tail: %d bytes at offset %d" bytes offset);
    Printf.printf "live sessions    %d\n"
      (List.length r.Jim_store.Recovery.sessions);
    List.iter
      (fun (s : Jim_store.Recovery.session) ->
        let labels, undos =
          List.fold_left
            (fun (l, u) step ->
              match step with
              | Jim_store.Recovery.Label _ -> (l + 1, u)
              | Jim_store.Recovery.Undo -> (l, u + 1))
            (0, 0) s.Jim_store.Recovery.steps
        in
        Printf.printf
          "  session %-4d %-20s seed %-6d fingerprint %s  %d labels, %d undos\n"
          s.Jim_store.Recovery.id s.Jim_store.Recovery.strategy
          s.Jim_store.Recovery.seed s.Jim_store.Recovery.fingerprint labels
          undos)
      r.Jim_store.Recovery.sessions;
    0

let run_journal_verify dir =
  match Jim_store.Recovery.load dir with
  | Error e ->
    Printf.eprintf "jim journal verify: %s\n" e;
    1
  | Ok r ->
    (match r.Jim_store.Recovery.torn with
    | None ->
      Printf.printf
        "ok: generation %d, %d journal records, %d live sessions, clean tail\n"
        r.Jim_store.Recovery.generation r.Jim_store.Recovery.journal_records
        (List.length r.Jim_store.Recovery.sessions)
    | Some (offset, bytes) ->
      Printf.printf
        "ok: generation %d, %d journal records, %d live sessions\n\
         torn tail: %d unacknowledged bytes at offset %d (cut on next open)\n"
        r.Jim_store.Recovery.generation r.Jim_store.Recovery.journal_records
        (List.length r.Jim_store.Recovery.sessions)
        bytes offset);
    0

let run_journal_export dir session out =
  match Jim_store.Recovery.load dir with
  | Error e ->
    Printf.eprintf "jim journal export-transcript: %s\n" e;
    1
  | Ok r -> (
    match
      List.find_opt
        (fun (s : Jim_store.Recovery.session) ->
          s.Jim_store.Recovery.id = session)
        r.Jim_store.Recovery.sessions
    with
    | None ->
      Printf.eprintf
        "jim journal export-transcript: no live session %d (inspect lists them)\n"
        session;
      1
    | Some s ->
      let text =
        Transcript.to_string
          (transcript_of_steps s.Jim_store.Recovery.arity
             s.Jim_store.Recovery.steps)
      in
      (match out with
      | None -> print_string text
      | Some path ->
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> output_string oc text);
        Printf.printf "Transcript for session %d written to %s\n" session path);
      0)

(* ------------------------------------------------------------------ *)
(* Command line                                                        *)

open Cmdliner

let interactive_flag =
  Arg.(
    value & flag
    & info [ "i"; "interactive" ] ~doc:"Ask a human instead of simulating.")

let demo_cmd =
  let walkthrough =
    Arg.(
      value & flag
      & info [ "w"; "walkthrough" ]
          ~doc:"Screen-by-screen replay of the paper's Section 2 narrative.")
  in
  let term =
    Term.(
      const (fun () i w s -> run_demo i w s)
      $ domains_arg $ interactive_flag $ walkthrough $ strategy_arg)
  in
  Cmd.v
    (Cmd.info "demo" ~doc:"The guided demonstration on the paper's instance.")
    term

let infer_cmd =
  let path =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"CSV" ~doc:"Instance to label (CSV with header).")
  in
  let transcript =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "transcript" ] ~docv:"FILE"
          ~doc:"Write the session transcript here (audit / resume).")
  in
  let replay =
    Arg.(
      value
      & opt (some file) None
      & info [ "resume" ] ~docv:"FILE"
          ~doc:"Replay a previous transcript before asking questions.")
  in
  let term =
    Term.(
      const (fun () p s t r -> run_infer p s t r)
      $ domains_arg $ path $ strategy_arg $ transcript $ replay)
  in
  Cmd.v
    (Cmd.info "infer" ~doc:"Interactive join inference over a CSV instance.")
    term

let compare_cmd =
  let n_attrs =
    Arg.(value & opt int 6 & info [ "n"; "attrs" ] ~doc:"Attribute count.")
  in
  let rank =
    Arg.(value & opt int 2 & info [ "r"; "rank" ] ~doc:"Goal equality atoms.")
  in
  let tuples =
    Arg.(value & opt int 80 & info [ "t"; "tuples" ] ~doc:"Instance size.")
  in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Random seed.") in
  let term =
    Term.(
      const (fun () n r t s -> run_compare n r t s)
      $ domains_arg $ n_attrs $ rank $ tuples $ seed)
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Compare all strategies on a synthetic instance.")
    term

let setcards_cmd =
  let sample =
    Arg.(value & opt int 400 & info [ "sample" ] ~doc:"Pairs on screen.")
  in
  let term =
    Term.(
      const (fun () i s n -> run_setcards i s n)
      $ domains_arg $ interactive_flag $ strategy_arg $ sample)
  in
  Cmd.v
    (Cmd.info "setcards" ~doc:"Joining sets of pictures (Set cards, Fig. 5).")
    term

let tpch_cmd =
  let term =
    Term.(const (fun () s -> run_tpch s) $ domains_arg $ strategy_arg)
  in
  Cmd.v
    (Cmd.info "tpch" ~doc:"Foreign-key join tasks over TPC-H-lite.")
    term

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket path (default /tmp/jim.sock).")

let tcp_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "tcp" ] ~docv:"HOST:PORT"
        ~doc:"Listen on / connect to TCP instead of a Unix socket.")

let drain_timeout_arg =
  Arg.(
    value
    & opt float Jim_server.Wire.default_config.Jim_server.Wire.drain_timeout
    & info [ "drain-timeout" ] ~docv:"SECONDS"
        ~doc:"How long shutdown lingers for in-flight replies to flush \
              before closing connections.")

let serve_cmd =
  let replicate_to =
    Arg.(
      value
      & opt (some string) None
      & info [ "replicate-to" ] ~docv:"ADDR"
          ~doc:"Stream every journal record to a $(b,jim standby) at \
                $(docv) (HOST:PORT or unix:PATH) before acknowledging; \
                needs $(b,--data-dir).  The standby is sent the current \
                snapshot and journal on attach, so it can start empty.")
  in
  let max_sessions =
    Arg.(
      value & opt int 64
      & info [ "max-sessions" ]
          ~doc:"Concurrent session cap; beyond it Start_session gets a \
                typed Server_busy reply.")
  in
  let idle_ttl =
    Arg.(
      value & opt float 600.
      & info [ "idle-ttl" ] ~docv:"SECONDS"
          ~doc:"Evict sessions idle longer than this.")
  in
  let threads =
    Arg.(
      value & opt int 16
      & info [ "threads" ]
          ~doc:"Connection worker pool size (a worker owns a connection \
                until the peer closes).")
  in
  let data_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "data-dir" ] ~docv:"DIR"
          ~doc:"Make sessions durable: journal every acknowledged answer to \
                $(docv) before replying, and recover all live sessions from \
                it on startup.  Omit for the default in-memory mode.")
  in
  let snapshot_every =
    Arg.(
      value & opt int 1024
      & info [ "snapshot-every" ] ~docv:"N"
          ~doc:"Journal records between snapshot compactions (with \
                $(b,--data-dir)).")
  in
  let commit_window =
    Arg.(
      value & opt float 0.
      & info [ "commit-window" ] ~docv:"SECONDS"
          ~doc:"Adaptive group commit (with $(b,--data-dir)): under \
                concurrent load the fsync leader dallies up to $(docv) \
                collecting queued journal records into one combined \
                append + single fsync.  0 (the default) keeps the \
                classic one-fsync-per-record path; durability is \
                identical either way — no record is acknowledged before \
                its batch is synced.")
  in
  let stats_every =
    Arg.(
      value
      & opt (some float) None
      & info [ "stats-every" ] ~docv:"SECONDS"
          ~doc:"Print wire-layer counters (connections accepted / active / \
                failed, malformed requests, coalesced writes and flushes, \
                bytes in/out), catalog counters (entries, hits/misses, \
                evictions) and — with $(b,--commit-window) — group-commit \
                batch counters every $(docv) seconds.")
  in
  let catalog_max_entries =
    Arg.(
      value & opt int 64
      & info [ "catalog-max-entries" ] ~docv:"N"
          ~doc:"Instance catalog capacity: beyond $(docv) entries the \
                least-recently-used entry with no live sessions is \
                evicted (entries pinned by live sessions never are).")
  in
  let votes =
    Arg.(
      value & opt int 0
      & info [ "votes" ] ~docv:"K"
          ~doc:"Enable crowd labeling: fan each session's pending question \
                out to its attached labelers ($(b,jim labeler)) and absorb \
                the majority of $(docv) votes as the session's answer — \
                only the aggregate is journaled.  $(docv) must be odd; 0 \
                (the default) disables crowd labeling and direct answers \
                work as usual.")
  in
  let vote_timeout =
    Arg.(
      value & opt float 30.
      & info [ "vote-timeout" ] ~docv:"SECONDS"
          ~doc:"Straggler deadline per voting round (with $(b,--votes)): \
                past it a decisively unbalanced round closes short and a \
                tied one is re-asked.")
  in
  let vote_weighted =
    Arg.(
      value & flag
      & info [ "vote-weighted" ]
          ~doc:"Weight each ballot by the labeler's running accuracy \
                estimate (Laplace-smoothed agreement with past \
                aggregates) instead of counting ballots equally.")
  in
  let term =
    Term.(
      const (fun () s t m i th d se cw ste cme dt rt v vt vw ->
          run_serve s t m i th d se cw ste cme dt rt v vt vw)
      $ domains_arg $ socket_arg $ tcp_arg $ max_sessions $ idle_ttl $ threads
      $ data_dir $ snapshot_every $ commit_window $ stats_every
      $ catalog_max_entries $ drain_timeout_arg $ replicate_to $ votes
      $ vote_timeout $ vote_weighted)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve inference sessions: JSON requests over line or \
             negotiated binary framing.")
    term

let standby_cmd =
  let data_dir =
    Arg.(
      required
      & opt (some string) None
      & info [ "data-dir" ] ~docv:"DIR"
          ~doc:"Accumulate the replicated snapshot and journal here; \
                promotion recovers this directory into a serving node.")
  in
  let snapshot_every =
    Arg.(
      value & opt int 1024
      & info [ "snapshot-every" ] ~docv:"N"
          ~doc:"Snapshot cadence of the store opened at promotion.")
  in
  let threads =
    Arg.(
      value & opt int 16
      & info [ "threads" ] ~doc:"Connection worker pool size.")
  in
  let term =
    Term.(
      const (fun s t d se th dt -> run_standby s t d se th dt)
      $ socket_arg $ tcp_arg $ data_dir $ snapshot_every $ threads
      $ drain_timeout_arg)
  in
  Cmd.v
    (Cmd.info "standby"
       ~doc:"Warm standby for a replicating $(b,jim serve): receives the \
             journal stream, maintains shadow state, and starts serving \
             the same sessions when told to promote (by a failing-over \
             $(b,jim router), or a $(b,promote) request).")
    term

let router_cmd =
  let shard =
    Arg.(
      non_empty
      & opt_all string []
      & info [ "shard" ] ~docv:"NAME=ADDR"
          ~doc:"A shard to route to (repeatable).  $(i,NAME) keys the \
                consistent-hash ring — keep it stable across restarts.")
  in
  let standby =
    Arg.(
      value
      & opt_all string []
      & info [ "standby" ] ~docv:"NAME=ADDR"
          ~doc:"A warm standby for shard $(i,NAME) (repeatable).  On \
                shard failure the router sends it $(b,promote) and fails \
                the shard's sessions over.")
  in
  let data_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "data-dir" ] ~docv:"DIR"
          ~doc:"Journal ring membership and session placements to \
                $(docv)/router.wal so routing survives a router restart.")
  in
  let vnodes =
    Arg.(
      value & opt int 64
      & info [ "vnodes" ] ~docv:"N"
          ~doc:"Virtual nodes per shard on the hash ring.")
  in
  let threads =
    Arg.(
      value & opt int 16
      & info [ "threads" ] ~doc:"Connection worker pool size.")
  in
  let term =
    Term.(
      const (fun s t sh st d v th dt -> run_router s t sh st d v th dt)
      $ socket_arg $ tcp_arg $ shard $ standby $ data_dir $ vnodes $ threads
      $ drain_timeout_arg)
  in
  Cmd.v
    (Cmd.info "router"
       ~doc:"Consistent-hash front over several $(b,jim serve) shards: \
             speaks the same protocol on both framings, pins each \
             session (and each catalog fingerprint) to one shard, and \
             promotes a standby when a shard dies.")
    term

let client_cmd =
  let batch =
    Arg.(
      value
      & opt (some string) None
      & info [ "batch" ] ~docv:"FILE"
          ~doc:"Send raw request lines from $(docv) (\"-\" = stdin, the \
                default) and print the response lines.")
  in
  let smoke =
    Arg.(
      value
      & opt (some int) None
      & info [ "smoke" ] ~docv:"N"
          ~doc:"Run $(docv) concurrent oracle-driven sessions and check \
                each outcome bit-identical to the in-process engine.")
  in
  let pipeline =
    Arg.(
      value & opt int 1
      & info [ "pipeline" ] ~docv:"K"
          ~doc:"With $(b,--smoke): multiplex $(docv) interleaved sessions \
                per connection, keeping up to $(docv) requests in flight \
                on each (one per session, so per-session ordering is \
                preserved).  1 (the default) keeps the classic \
                one-connection-per-session smoke.")
  in
  let busy =
    Arg.(
      value
      & opt (some int) None
      & info [ "busy-check" ] ~docv:"N"
          ~doc:"Fill the server with $(docv) sessions and check the next \
                one is refused with Server_busy.")
  in
  let crash_start =
    Arg.(
      value
      & opt (some int) None
      & info [ "crash-start" ] ~docv:"N"
          ~doc:"Crash drill, phase one: leave $(docv) sessions half-answered \
                and record what was acknowledged in $(b,--state); then kill \
                the server with SIGKILL and restart it.")
  in
  let crash_resume =
    Arg.(
      value & flag
      & info [ "crash-resume" ]
          ~doc:"Crash drill, phase two: resume the sessions recorded in \
                $(b,--state) against the restarted server and check every \
                outcome bit-identical to an uninterrupted run.")
  in
  let state =
    Arg.(
      value
      & opt string "/tmp/jim-crash-state.txt"
      & info [ "state" ] ~docv:"FILE"
          ~doc:"Where the crash drill records acknowledged progress.")
  in
  let tolerate_drops =
    Arg.(
      value & flag
      & info [ "tolerate-drops" ]
          ~doc:"Don't fail on transport-level losses (connection refused, \
                clean EOF) — for runs through a chaos proxy, where drops \
                are the injected fault.  Divergent outcomes still fail.")
  in
  let binary =
    Arg.(
      value & flag
      & info [ "binary" ]
          ~doc:"Negotiate length-prefixed binary framing after connecting \
                (smoke and batch modes).  Fails cleanly against a server \
                that only speaks the line protocol.")
  in
  let instance =
    Arg.(
      value
      & opt (some string) None
      & info [ "instance" ] ~docv:"FINGERPRINT"
          ~doc:"Start an interactive session on the already-cataloged \
                instance with this fingerprint (see $(b,jim instance \
                register)) — no instance data crosses the wire.")
  in
  let catalog_smoke =
    Arg.(
      value
      & opt (some int) None
      & info [ "catalog-smoke" ] ~docv:"N"
          ~doc:"Register one synthetic instance, run $(docv) concurrent \
                sessions against it by fingerprint, check each outcome \
                bit-identical to the in-process engine and that the \
                server's catalog counters show shared hits.")
  in
  let seed =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"Session seed for $(b,--instance) mode.")
  in
  let receive_timeout =
    Arg.(
      value & opt float 30.
      & info [ "receive-timeout" ] ~docv:"SECONDS"
          ~doc:"Give up on any single reply after $(docv) seconds (all \
                drill modes).  A stalled server or proxy then counts as a \
                transport drop, never a divergence and never a hang.")
  in
  let crowd_start =
    Arg.(
      value
      & opt (some int) None
      & info [ "crowd-start" ] ~docv:"SEED"
          ~doc:"Crowd drill controller: start one session on the smoke \
                workload's synthetic instance seeded $(docv) against a \
                $(b,jim serve --votes) server, print its session id for \
                the $(b,jim labeler) processes, wait for convergence and \
                check the inferred predicate equals the noiseless \
                reference run's.")
  in
  let crowd_deadline =
    Arg.(
      value & opt float 120.
      & info [ "crowd-deadline" ] ~docv:"SECONDS"
          ~doc:"With $(b,--crowd-start): fail if the crowd has not \
                converged within $(docv) seconds.")
  in
  let expect_flips =
    Arg.(
      value & flag
      & info [ "expect-flips" ]
          ~doc:"With $(b,--crowd-start): additionally require at least one \
                majority flip (an overruled dissenting ballot) — the \
                noisy-labeler drill must actually have exercised \
                aggregation.")
  in
  let term =
    Term.(
      const (fun s t b sm pl bu cs cr st td bin inst csm strat seed rt cst cd ef ->
          run_client s t b sm pl bu cs cr st td bin inst csm strat seed rt cst
            cd ef)
      $ socket_arg $ tcp_arg $ batch $ smoke $ pipeline $ busy $ crash_start
      $ crash_resume $ state $ tolerate_drops $ binary $ instance
      $ catalog_smoke $ strategy_arg $ seed $ receive_timeout $ crowd_start
      $ crowd_deadline $ expect_flips)
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Talk to a running jim server: batch, smoke, busy-check, \
             crash-drill or crowd-drill mode.")
    term

let labeler_cmd =
  let binary =
    Arg.(
      value & flag
      & info [ "binary" ]
          ~doc:"Negotiate length-prefixed binary framing after connecting.")
  in
  let session =
    Arg.(
      required
      & opt (some int) None
      & info [ "session" ] ~docv:"ID"
          ~doc:"The crowd session to label (printed by $(b,jim client \
                --crowd-start)).")
  in
  let instance =
    Arg.(
      required
      & opt (some int) None
      & info [ "instance" ] ~docv:"SEED"
          ~doc:"Seed of the smoke workload's synthetic instance the \
                session runs on — the labeler regenerates it locally to \
                obtain the goal oracle it answers from.")
  in
  let error_rate =
    Arg.(
      value & opt float 0.
      & info [ "error-rate" ] ~docv:"P"
          ~doc:"Flip each answer independently with probability $(docv) \
                (deterministically, from $(b,--labeler-seed)) — the \
                noisy-worker simulation.")
  in
  let labeler_seed =
    Arg.(
      value & opt int 0
      & info [ "labeler-seed" ] ~docv:"SEED"
          ~doc:"Seeds this labeler's noise stream.")
  in
  let poll_interval =
    Arg.(
      value & opt float 0.02
      & info [ "poll-interval" ] ~docv:"SECONDS"
          ~doc:"Delay between polls of a round this labeler has already \
                voted in.")
  in
  let receive_timeout =
    Arg.(
      value & opt float 30.
      & info [ "receive-timeout" ] ~docv:"SECONDS"
          ~doc:"Give up on any single reply after $(docv) seconds.")
  in
  let term =
    Term.(
      const (fun s t b se inst er ls pi rt ->
          run_labeler s t b se inst er ls pi rt)
      $ socket_arg $ tcp_arg $ binary $ session $ instance $ error_rate
      $ labeler_seed $ poll_interval $ receive_timeout)
  in
  Cmd.v
    (Cmd.info "labeler"
       ~doc:"A crowd labeler: attach to a session on a $(b,jim serve \
             --votes) server, poll for each voting round and cast a \
             (possibly noise-flipped) ballot until the session converges.")
    term

let chaos_cmd =
  let upstream =
    Arg.(
      required
      & opt (some string) None
      & info [ "upstream" ] ~docv:"ADDR"
          ~doc:"The real server to forward to: HOST:PORT or unix:PATH.")
  in
  let plan =
    Arg.(
      value & opt string "none"
      & info [ "plan" ] ~docv:"PLAN"
          ~doc:"Comma-separated faults by connection index: $(b,drop=N) \
                (cut every Nth connection at a line boundary after \
                $(b,drop-lines=K) replies), $(b,trickle=N) (byte-at-a-time \
                replies), $(b,partial=N) (replies in ragged flushed \
                chunks), $(b,stall=N) (delay replies so other sessions \
                overtake), $(b,delay-ms=M) (pacing).")
  in
  let term =
    Term.(
      const (fun s t u p -> run_chaos s t u p)
      $ socket_arg $ tcp_arg $ upstream $ plan)
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Fault-injecting proxy between jim clients and a jim server: \
             deterministic connection drops, partial lines, slow-loris \
             trickle and stalled streams.  SIGINT prints stats and exits.")
    term

let instance_cmd =
  let binary =
    Arg.(
      value & flag
      & info [ "binary" ]
          ~doc:"Negotiate length-prefixed binary framing after connecting.")
  in
  let register =
    let path =
      Arg.(
        required
        & pos 0 (some file) None
        & info [] ~docv:"CSV"
            ~doc:"Instance to upload (CSV with header).")
    in
    Cmd.v
      (Cmd.info "register"
         ~doc:"Upload a CSV instance into the server's catalog once and \
               print its fingerprint handle; sessions then start by \
               fingerprint ($(b,jim client --instance)) without re-sending \
               or re-deriving the instance.")
      Term.(
        const (fun s t b p -> run_instance_register s t b p)
        $ socket_arg $ tcp_arg $ binary $ path)
  in
  let stats =
    Cmd.v
      (Cmd.info "stats"
         ~doc:"Print the server's catalog counters: entries, bytes, pinned \
               sessions, hits/misses, evictions, fingerprints, derivations.")
      Term.(
        const (fun s t b -> run_instance_stats s t b)
        $ socket_arg $ tcp_arg $ binary)
  in
  Cmd.group
    (Cmd.info "instance"
       ~doc:"The catalog surface of a running jim server: register \
             instances once, inspect the shared-entry counters.")
    [ register; stats ]

let journal_cmd =
  let dir =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"DIR" ~doc:"The server's $(b,--data-dir).")
  in
  let inspect =
    Cmd.v
      (Cmd.info "inspect"
         ~doc:"Recover DIR read-only and print generation, live sessions and \
               journal status.")
      Term.(const run_journal_inspect $ dir)
  in
  let verify =
    Cmd.v
      (Cmd.info "verify"
         ~doc:"Check every record's framing and CRC plus event consistency; \
               exits non-zero naming the byte offset on mid-log corruption. \
               A torn final record is reported and benign.")
      Term.(const run_journal_verify $ dir)
  in
  let export =
    let session =
      Arg.(
        required
        & pos 1 (some int) None
        & info [] ~docv:"SESSION" ~doc:"Live session id (see inspect).")
    in
    let out =
      Arg.(
        value
        & opt (some string) None
        & info [ "o"; "output" ] ~docv:"FILE"
            ~doc:"Write here instead of stdout.")
    in
    Cmd.v
      (Cmd.info "export-transcript"
         ~doc:"Print a live session's surviving labels in the \
               $(b,jim infer --resume) transcript format.")
      Term.(const run_journal_export $ dir $ session $ out)
  in
  Cmd.group
    (Cmd.info "journal"
       ~doc:"Inspect, verify or export from a durable data directory.")
    [ inspect; verify; export ]

let () =
  let doc = "JIM: interactive join query inference (VLDB 2014)" in
  let info = Cmd.info "jim" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            demo_cmd;
            infer_cmd;
            compare_cmd;
            setcards_cmd;
            tpch_cmd;
            serve_cmd;
            standby_cmd;
            router_cmd;
            client_cmd;
            labeler_cmd;
            instance_cmd;
            chaos_cmd;
            journal_cmd;
          ]))
