(* Data integration over disparate sources (the paper's §1 setting: "the
   relations to be joined come from disparate data sources" and "the
   values of the attributes carry little or no knowledge of metadata").

   Two sources describe the same world with opaque column names.  The
   pipeline is:
     1. profile the instances (keys, inclusion dependencies) to nominate
        candidate equality atoms - no metadata needed;
     2. let JIM confirm the actual join predicate with a few membership
        questions;
     3. emit the SQL / GAV artefacts.

   Run with: dune exec examples/data_integration.exe *)

module V = Jim_relational.Value
module R = Jim_relational.Relation
module Schema = Jim_relational.Schema
module Fd = Jim_relational.Fd
module Database = Jim_relational.Database
module P = Jim_partition.Partition
module W = Jim_workloads
open Jim_core

(* Source 1: a CRM export - opaque headers. *)
let src1 =
  R.of_rows ~name:"src1"
    (Schema.of_list
       [ ("f1", V.Tint); ("f2", V.Tstring); ("f3", V.Tstring) ])
    V.[
        [ Int 101; Str "ada"; Str "lille" ];
        [ Int 102; Str "bob"; Str "paris" ];
        [ Int 103; Str "eve"; Str "lille" ];
        [ Int 104; Str "joe"; Str "nyc" ];
      ]

(* Source 2: a ticketing dump - also opaque; g2 is the customer id. *)
let src2 =
  R.of_rows ~name:"src2"
    (Schema.of_list
       [ ("g1", V.Tint); ("g2", V.Tint); ("g3", V.Tstring) ])
    V.[
        [ Int 1; Int 101; Str "open" ];
        [ Int 2; Int 103; Str "closed" ];
        [ Int 3; Int 101; Str "open" ];
        [ Int 4; Int 102; Str "open" ];
        [ Int 5; Int 104; Str "escalated" ];
      ]

let () =
  (* 1. Profiling: keys and candidate joinable columns. *)
  Printf.printf "Profiling src1: minimal keys = %s\n"
    (String.concat " "
       (List.map
          (fun k ->
            "{"
            ^ String.concat ","
                (List.map
                   (fun c -> (Schema.column (R.schema src1) c).Schema.cname)
                   k)
            ^ "}")
          (Fd.minimal_keys src1)));
  let suggestions = Fd.suggest_join_pairs ~threshold:0.9 src1 src2 in
  Printf.printf "Candidate join columns (inclusion >= 0.9):\n";
  List.iter
    (fun (a, b, score) ->
      Printf.printf "  src1.%s ~ src2.%s   (score %.2f)\n"
        (Schema.column (R.schema src1) a).Schema.cname
        (Schema.column (R.schema src2) b).Schema.cname
        score)
    suggestions;

  (* 2. JIM confirms which candidate the user actually means, on the
     denormalised product. *)
  let db = Database.of_relations [ src1; src2 ] in
  match
    W.Denorm.task_of_names db
      ([ "src1"; "src2" ], [ ("src1.f1", "src2.g2") ])
  with
  | Error e -> failwith e
  | Ok task ->
    let o =
      Session.run ~strategy:Strategy.lookahead_entropy
        ~oracle:(W.Denorm.oracle task) task.W.Denorm.instance
    in
    let cross =
      P.restrict o.Session.query ~allowed:task.W.Denorm.cross_only
    in
    let q = Jquery.make task.W.Denorm.schema cross in
    Printf.printf
      "\nJIM confirmed the join with %d membership questions:\n  %s\n"
      o.Session.interactions
      (Jquery.to_sql ~from:[ "src1"; "src2" ] q);
    Printf.printf "GAV mapping: %s\n" (Jquery.to_gav ~head:"tickets_joined" q);

    (* 3. Explanations: why were the remaining tuples never asked? *)
    let eng = Session.create task.W.Denorm.instance in
    let oracle = W.Denorm.oracle task in
    let rng = Random.State.make [| 0 |] in
    let rec replay () =
      match Session.question eng Strategy.lookahead_entropy rng with
      | None -> ()
      | Some ci ->
        let sg = (Session.classes eng).(ci).Sigclass.sg in
        (match Session.answer eng ci (Oracle.label oracle sg) with
        | Ok () -> replay ()
        | Error _ -> assert false)
    in
    replay ();
    Printf.printf "\nWhy the first rows were never asked:\n";
    for r = 0 to 2 do
      Printf.printf "  row %d: %s\n" (r + 1)
        (Explain.to_string task.W.Denorm.schema (Session.explain_row eng r))
    done
