(* The full demonstration scenario of Section 3, part 1 ("Why using a
   strategy?"): the four interaction types of Fig. 3 side by side on the
   travel-agency instance, closing with the Fig. 4 "benefit of using a
   strategy" bar chart and the progress statistics the demo keeps on
   screen.

   Run with: dune exec examples/travel_packages.exe *)

module F = Jim_workloads.Flights
module Relation = Jim_relational.Relation
open Jim_core

let () =
  let goal = F.q2 in
  let oracle = Oracle.of_goal goal in
  let instance = F.instance in
  let order = List.init (Relation.cardinality instance) (fun i -> i) in

  Printf.printf "Goal query: %s\n\n"
    (Jim_tui.Render.partition_line F.schema goal);

  (* Interaction type 1: the attendee labels every tuple, top to bottom,
     with no help from the system. *)
  let r1 = Interaction.mode1_label_all ~order ~oracle instance in

  (* Interaction type 2: same order, but uninformative tuples gray out as
     labels arrive and she skips them. *)
  let r2 = Interaction.mode2_gray_out ~order ~oracle instance in

  (* Interaction type 3: the system proposes the top-3 informative tuples
     per round. *)
  let r3 =
    Interaction.mode3_top_k ~k:3 ~strategy:Strategy.lookahead_entropy ~oracle
      instance
  in

  (* Interaction type 4: the core of JIM — one most informative tuple at
     a time. *)
  let r4 =
    Interaction.mode4_interactive ~strategy:Strategy.lookahead_entropy ~oracle
      instance
  in

  List.iter
    (fun (r : Interaction.report) ->
      Printf.printf "mode %-13s: %2d labels, %2d tuples decided for free\n"
        r.Interaction.mode r.Interaction.labels_given
        r.Interaction.auto_determined)
    [ r1; r2; r3; r4 ];

  (* Fig. 4: how many interactions she would have done with a strategy. *)
  print_endline "\nThe benefit of using a strategy (Fig. 4):\n";
  print_string
    (Jim_tui.Barchart.benefit
       ~baseline:("label everything", r1.Interaction.labels_given)
       [
         ("gray out (mode 2)", r2.Interaction.labels_given);
         ("top-3 (mode 3)", r3.Interaction.labels_given);
         ("JIM (mode 4)", r4.Interaction.labels_given);
       ]);

  (* What the engine's screen looks like midway: label (3)+ and render. *)
  print_endline "\nScreen after labelling tuple (3) as +:\n";
  let eng = Session.create instance in
  (match
     Session.answer eng
       (Option.get (Sigclass.find (Session.classes eng) (F.signature 3)))
       State.Pos
   with
  | Ok () -> ()
  | Error _ -> assert false);
  print_string (Jim_tui.Render.engine_view eng instance);
  print_string (Jim_tui.Progress.panel (Stats.of_engine eng));

  assert (Jquery.equivalent_on
            (Jquery.make F.schema r4.Interaction.query)
            (Jquery.make F.schema goal) instance)
